"""One function per paper figure/table (§5 evaluation) plus ablations.

Conventions:

* every function takes an optional :class:`~repro.harness.config.ExperimentScale`
  and a seed, and returns a :class:`~repro.harness.report.Report` whose
  tables juxtapose the paper's reported values with the measured ones;
* throughput comparisons use steady-state (post-rebalancing) throughput, as
  the paper does (§5.2);
* the Origami model is trained once per (workload, scale, seed) and cached.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.execute import run_variant as run_bench_variant
from repro.bench.scenario import get_scenario as get_bench_scenario
from repro.balancers import (
    CoarseHashPolicy,
    EvenPartitionPolicy,
    FineHashPolicy,
    LunulePolicy,
    MetaOptOraclePolicy,
    MLTreePolicy,
    OrigamiPolicy,
    SingleMdsPolicy,
)
from repro.cluster.partition import PartitionMap
from repro.core.metaopt import exhaustive_opt, meta_opt
from repro.costmodel import CostParams, evaluate_trace
from repro.fs import SimConfig, SimResult, run_simulation
from repro.harness.config import ExperimentScale, default_params, get_scale
from repro.harness.report import Report
from repro.ml.dataset import FEATURE_NAMES
from repro.ml.importance import rank_features
from repro.obs.profiling import PROFILER
from repro.sim import SeedSequenceFactory
from repro.training import collect_training_data, train_models, train_origami_model
from repro.workloads import (
    generate_trace_diurnal,
    generate_trace_flash,
    generate_trace_mdtest,
    generate_trace_onboard,
    generate_trace_ro,
    generate_trace_rw,
    generate_trace_wi,
)

__all__ = [
    "fig2_even_partitioning",
    "fig5_overall",
    "fig6_imbalance",
    "table1_features",
    "table2_cache",
    "fig7_efficiency",
    "fig8_scalability",
    "fig9_realworld",
    "theorem1_gap",
    "ablation_delta",
    "ablation_cache_depth",
    "ablation_models",
    "ablation_epoch_length",
    "ablation_online_learning",
    "ablation_mdtest_uniform",
    "ablation_cache_design",
    "STRATEGIES",
]

#: figure-legend order used throughout the evaluation
STRATEGIES = ("Single", "C-Hash", "F-Hash", "ML-tree", "Origami")

_WORKLOADS = {
    "rw": generate_trace_rw,
    "ro": generate_trace_ro,
    "wi": generate_trace_wi,
    "mdtest": generate_trace_mdtest,
    "diurnal": generate_trace_diurnal,
    "flash": generate_trace_flash,
    "onboard": generate_trace_onboard,
}


#: per-family namespace-size knob scaled by ``ExperimentScale.tree_scale``
#: (kwarg name, paper-default value) — see :func:`build_workload`
_TREE_SIZE_KNOB = {
    "rw": ("n_modules", 32),
    "ro": ("n_dirs", 3000),
    "wi": ("n_tenants", 50),
    "mdtest": ("n_ranks", 32),
    "diurnal": ("n_tenants", 24),
    "flash": ("n_tenants", 24),
    "onboard": ("n_tenants", 24),
}


def build_workload(kind: str, n_ops: int, seed: int, tree_scale: float = 1.0):
    """Deterministically (re)build a workload; a fresh tree every call, since
    DES runs mutate the namespace.

    ``tree_scale`` multiplies each family's namespace-size knob (modules /
    dirs / tenants / ranks).  At the default 1.0 the knob is **not passed**
    at all, so every pre-existing tier replays the exact historical RNG
    sequence; the ``large`` tier uses 256.0 to reach ~1M inodes on ``wi``.
    """
    ssf = SeedSequenceFactory(seed)
    kwargs = {}
    if tree_scale != 1.0:
        knob, base = _TREE_SIZE_KNOB[kind]
        kwargs[knob] = max(1, int(round(base * tree_scale)))
    with PROFILER.phase("build_workload"):
        return _WORKLOADS[kind](ssf.stream(f"workload-{kind}"), n_ops=n_ops, **kwargs)


@functools.lru_cache(maxsize=16)
def origami_model(kind: str, scale_name: str, seed: int = 7):
    """Train (and cache) the benefit model for a workload family."""
    scale = get_scale(scale_name)
    params = default_params()
    built, trace = build_workload(kind, scale.train_ops, seed)
    with PROFILER.phase("train_model"):
        dataset, _ = collect_training_data(
            built.tree,
            trace,
            n_mds=5,
            params=params,
            delta=50.0,
            ops_per_epoch=scale.train_epoch_ops,
        )
        return train_origami_model(dataset, n_estimators=scale.gbdt_rounds)


def make_policy(name: str, kind: str, scale: ExperimentScale):
    if name == "Single":
        return SingleMdsPolicy(), 1
    if name == "Even":
        return EvenPartitionPolicy(), 5
    if name == "C-Hash":
        return CoarseHashPolicy(), 5
    if name == "F-Hash":
        return FineHashPolicy(), 5
    if name == "Lunule":
        return LunulePolicy(), 5
    if name == "ML-tree":
        return MLTreePolicy(), 5
    if name == "Origami":
        model = origami_model(kind, scale.name)
        return OrigamiPolicy(model, max_moves_per_epoch=8, cooldown_epochs=2), 5
    if name == "Origami-online":
        from repro.training.online import OnlineOrigamiPolicy

        return (
            OnlineOrigamiPolicy(
                delta=50.0, retrain_every=3, min_samples=400,
                gbdt_rounds=min(scale.gbdt_rounds, 60),
                max_moves_per_epoch=8, cooldown_epochs=2,
            ),
            5,
        )
    if name == "AdaM-RL":
        from repro.balancers.adam_rl import AdamRLPolicy

        return AdamRLPolicy(), 5
    if name == "Meta-OPT":
        return MetaOptOraclePolicy(delta=50.0, max_migrations_per_epoch=8), 5
    raise ValueError(f"unknown strategy {name!r}")


def run_strategy(
    name: str,
    kind: str,
    scale: ExperimentScale,
    seed: int = 42,
    n_mds: Optional[int] = None,
    n_clients: Optional[int] = None,
    cache_depth: int = 2,
    datapath: Optional[dict] = None,
    n_ops: Optional[int] = None,
    faults=None,
    obs=None,
    data_dir: Optional[str] = None,
    durability=None,
    autoscale=None,
) -> SimResult:
    """One full DES run of a strategy on a workload.

    This is the execution path shared by the paper figures and the
    ``repro.bench`` runner (via :func:`repro.bench.execute.run_variant`).
    """
    built, trace = build_workload(
        kind, n_ops or scale.n_ops, seed, tree_scale=scale.tree_scale
    )
    policy, default_mds = make_policy(name, kind, scale)
    config = SimConfig(
        n_mds=n_mds if n_mds is not None else default_mds,
        n_clients=n_clients if n_clients is not None else scale.n_clients,
        epoch_ms=scale.epoch_ms,
        params=default_params(cache_depth),
        seed=seed,
        oracle_window_ops=9000,
        datapath=datapath,
        faults=faults,
        obs=obs,
        data_dir=data_dir,
        durability=durability,
        autoscale=autoscale,
    )
    with PROFILER.phase(f"simulate:{name}"):
        return run_simulation(built.tree, trace, policy, config)


# =====================================================================
# Motivation: Fig. 2 — even per-directory partitioning considered harmful
# =====================================================================


def fig2_even_partitioning(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Report:
    """Fig. 2: per-MDS + aggregate throughput and JCT, 1 MDS vs 5-MDS even.

    Paper: each of the 5 MDSs runs well below the single MDS; the aggregate
    is only ~1.4× the single MDS; JCT shrinks by only ~57%.
    """
    scale = scale or get_scale()
    rep = Report(
        "Fig 2 — even per-directory partitioning (web workload)",
        "Paper: aggregate ~1.4x a single MDS; JCT reduced by only ~57%",
    )
    single = run_strategy("Single", "ro", scale, seed=seed)
    even = run_strategy("Even", "ro", scale, seed=seed)

    s_tput = single.steady_state_throughput()
    e_tput = even.steady_state_throughput()
    per_mds = even.total_qps_per_mds() / (even.duration_ms / 1000.0)
    rows = [["Single MDS", s_tput / 1000, 1.0]]
    for i, v in enumerate(per_mds):
        rows.append([f"Even M{i + 1}", v / 1000, v / s_tput])
    rows.append(["Even aggregate", e_tput / 1000, e_tput / s_tput])
    rep.add_table(["setup", "kops/s", "vs single"], rows, "Fig 2a: throughput")

    jct_reduction = 1.0 - even.duration_ms / single.duration_ms
    rep.add_table(
        ["setup", "JCT (virtual s)", "reduction"],
        [
            ["1 MDS", single.duration_ms / 1000.0, "-"],
            ["5 MDS even", even.duration_ms / 1000.0, f"{jct_reduction * 100:.0f}%"],
        ],
        "Fig 2b: job completion time (paper: ~57% reduction)",
    )
    rep.put("aggregate_speedup", e_tput / s_tput)
    rep.put("jct_reduction", jct_reduction)
    rep.put("paper_aggregate_speedup", 1.4)
    rep.put("paper_jct_reduction", 0.57)
    return rep


# =====================================================================
# Fig. 5 — overall performance on Trace-RW
# =====================================================================

_PAPER_FIG5_TPUT = {"Single": 1.0, "C-Hash": 2.23, "F-Hash": 1.54, "ML-tree": 1.89, "Origami": 3.86}
_PAPER_FIG5_LAT = {"Single": 1.0, "C-Hash": 1.439, "F-Hash": 1.891, "ML-tree": 1.293, "Origami": 1.242}


def fig5_overall(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Tuple[Report, Dict[str, SimResult]]:
    """Fig. 5: aggregate throughput under high load + single-thread latency.

    Returns the report and the raw high-load results (fig6/fig7 reuse them).
    """
    scale = scale or get_scale()
    rep = Report(
        "Fig 5 — overall performance (Trace-RW)",
        "Paper: Origami 3.86x single / 1.73x best baseline; latency +24.2% vs single",
    )
    # the high-load matrix is the registered `fig5_overall` bench scenario:
    # the paper figure and `repro bench run --scenario fig5_overall` share
    # one config source and one execution path
    scn = get_bench_scenario("fig5_overall")
    results: Dict[str, SimResult] = {}
    rows = []
    base = None
    for variant in scn.variants:
        name = variant.strategy
        r, _ = run_bench_variant(scn, variant, seed=seed, scale=scale)
        results[name] = r
        tput = r.steady_state_throughput(0.4)
        if base is None:
            base = tput
        rows.append(
            [name, tput / 1000, tput / base, _PAPER_FIG5_TPUT[name], r.rpcs_per_request]
        )
    rep.add_table(
        ["strategy", "kops/s", "vs single", "paper vs single", "rpc/req"],
        rows,
        "Fig 5a: aggregate metadata throughput (high load)",
    )

    lat_rows = []
    lat_base = None
    for name in STRATEGIES:
        r = run_strategy(name, "rw", scale, seed=seed, n_clients=1, n_ops=scale.n_ops // 4)
        lat = r.mean_latency_ms
        if lat_base is None:
            lat_base = lat
        lat_rows.append([name, lat * 1000, lat / lat_base, _PAPER_FIG5_LAT[name]])
    rep.add_table(
        ["strategy", "latency (us)", "vs single", "paper vs single"],
        lat_rows,
        "Fig 5b: average latency (single thread)",
    )
    rep.put("throughput_x", {r[0]: r[2] for r in rows})
    rep.put("latency_x", {r[0]: r[2] for r in lat_rows})
    return rep, results


# =====================================================================
# Fig. 6 — imbalance factors
# =====================================================================

_PAPER_FIG6_QPS = {"C-Hash": 0.37, "F-Hash": 0.33, "ML-tree": 0.35, "Origami": 0.34}


def fig6_imbalance(
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
    results: Optional[Dict[str, SimResult]] = None,
) -> Report:
    """Fig. 6: imbalance factor on QPS / RPCs / Inodes / BusyTime.

    Paper: F-Hash most even on QPS/RPCs/Inodes; Origami lowest on BusyTime
    (−48.3% vs F-Hash) — "keeping all MDSs busy beats even partitioning".
    """
    scale = scale or get_scale()
    if results is None:
        results = {
            name: run_strategy(name, "rw", scale, seed=seed)
            for name in STRATEGIES
            if name != "Single"
        }
    rep = Report(
        "Fig 6 — imbalance factors (Trace-RW)",
        "Paper: F-Hash most even on QPS/RPCs/Inodes; Origami lowest BusyTime imbalance",
    )
    rows = []
    for name, r in results.items():
        if r.n_mds == 1:
            continue
        imb = r.imbalance()
        rows.append([name, imb.qps, imb.rpcs, imb.inodes, imb.busytime])
    rep.add_table(["strategy", "QPS", "RPCs", "Inodes", "BusyTime"], rows)
    rep.put("imbalance", {row[0]: dict(zip(["qps", "rpcs", "inodes", "busytime"], row[1:])) for row in rows})
    return rep


# =====================================================================
# Table 1 — features and importance ranks
# =====================================================================

_PAPER_TABLE1_RANKS = {
    "n_sub_files": 1,
    "n_write": 2,
    "dir_file_ratio": 2,
    "n_sub_dirs": 4,
    "n_read": 6,
    "read_write_ratio": 6,
    "depth": 7,
}


def table1_features(scale: Optional[ExperimentScale] = None, seed: int = 7) -> Report:
    """Table 1: Gini (split-gain) importance ranks of the 7 features.

    Trained on a mixed dataset across all three workload families, as the
    collector-driven pipeline would accumulate in production; a single
    family overweights its own structural quirks.
    """
    scale = scale or get_scale()
    from repro.ml.dataset import TrainingSet

    merged = TrainingSet()
    params = default_params()
    for kind in ("rw", "ro", "wi"):
        built, trace = build_workload(kind, scale.train_ops, seed)
        ds, _ = collect_training_data(
            built.tree, trace, n_mds=5, params=params, delta=50.0,
            ops_per_epoch=scale.train_epoch_ops,
        )
        merged.X_parts.extend(ds.X_parts)
        merged.y_parts.extend(ds.y_parts)
    model = train_origami_model(merged, n_estimators=scale.gbdt_rounds)
    ranked = rank_features(model.feature_importances())
    rep = Report(
        "Table 1 — feature importance (GBDT split gain)",
        "Paper ranks: # sub-files 1; # write & dir-file ratio 2; # sub-dirs 4; "
        "# read & read-write ratio 6; depth 7",
    )
    rows = [
        [name, imp, rank, _PAPER_TABLE1_RANKS[name]] for name, imp, rank in ranked
    ]
    rep.add_table(["feature", "importance", "rank", "paper rank"], rows)
    rep.put("ranks", {name: rank for name, _imp, rank in ranked})
    rep.put("importances", {name: imp for name, imp, _ in ranked})
    return rep


# =====================================================================
# Table 2 — metadata cache on/off
# =====================================================================

_PAPER_TABLE2 = {
    # strategy: (tput w/o cache, tput w/ cache, rpc w/o, rpc w/)  [kops, kops, -, -]
    "C-Hash": (32.8, 46.0, 2.23, 1.54),
    "F-Hash": (22.5, 30.0, 2.87, 2.27),
    "ML-tree": (26.7, 38.6, 1.62, 1.17),
    "Origami": (39.3, 78.9, 1.85, 1.04),
}


def table2_cache(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Report:
    """Table 2: throughput and RPC/request with and without the near-root cache."""
    scale = scale or get_scale()
    rep = Report(
        "Table 2 — near-root cache on/off (Trace-RW)",
        "Paper: caching helps everyone; Origami gains most (+100.7%) and "
        "reaches 1.04 RPC/request with cache",
    )
    rows = []
    data = {}
    for name in ("C-Hash", "F-Hash", "ML-tree", "Origami"):
        cold = run_strategy(name, "rw", scale, seed=seed, cache_depth=0)
        warm = run_strategy(name, "rw", scale, seed=seed, cache_depth=2)
        ct, wt = cold.steady_state_throughput(0.4), warm.steady_state_throughput(0.4)
        p = _PAPER_TABLE2[name]
        rows.append(
            [
                name,
                ct / 1000,
                wt / 1000,
                cold.rpcs_per_request,
                warm.rpcs_per_request,
                f"{p[2]:.2f}/{p[3]:.2f}",
            ]
        )
        data[name] = {
            "tput_nocache": ct,
            "tput_cache": wt,
            "rpc_nocache": cold.rpcs_per_request,
            "rpc_cache": warm.rpcs_per_request,
        }
    rep.add_table(
        [
            "strategy",
            "kops/s w/o cache",
            "kops/s w/ cache",
            "rpc/req w/o",
            "rpc/req w/",
            "paper rpc (w/o / w/)",
        ],
        rows,
    )
    rep.put("cache", data)
    return rep


# =====================================================================
# Fig. 7 — efficiency over time
# =====================================================================


def fig7_efficiency(
    scale: Optional[ExperimentScale] = None,
    seed: int = 42,
    results: Optional[Dict[str, SimResult]] = None,
) -> Report:
    """Fig. 7: per-epoch efficiency (busy fraction), normalised to 1 MDS.

    Paper: hash strategies run at persistently lower efficiency; ML-tree pays
    heavy balancing overhead; Origami converges to near-single-MDS efficiency.
    """
    scale = scale or get_scale()
    if results is None:
        results = {name: run_strategy(name, "rw", scale, seed=seed) for name in STRATEGIES}
    rep = Report(
        "Fig 7 — efficiency over time (busy fraction, normalised to single MDS)",
        "Each row: efficiency per epoch (earliest first)",
    )
    single_eff = results["Single"].efficiency_series()
    base = float(np.median(single_eff)) if single_eff.size else 1.0
    rows = []
    for name, r in results.items():
        eff = r.efficiency_series() / base
        shown = [round(float(v), 2) for v in eff[:10]]
        rows.append([name, *shown, *[""] * (10 - len(shown))])
        rep.add_series(f"efficiency_{name}", eff)
    rep.add_table(["strategy", *[f"e{i}" for i in range(10)]], rows)
    return rep


# =====================================================================
# Fig. 8 — scalability with cluster size
# =====================================================================

_PAPER_FIG8_ORIGAMI = {2: 1.9, 3: 2.7, 4: 3.3, 5: 3.86}


def fig8_scalability(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Report:
    """Fig. 8: normalised throughput as MDS count grows 1→5.

    Paper: none of the baselines scales well; Origami is near-linear
    (≈2.7× at 3 MDSs).
    """
    scale = scale or get_scale()
    rep = Report(
        "Fig 8 — scalability (Trace-RW)",
        "Normalised aggregate throughput vs number of MDSs; paper: Origami near-linear",
    )
    # the strategy×cluster-size matrix is the registered `fig8_scalability`
    # bench scenario — one config source for the figure and the perf runner
    scn = get_bench_scenario("fig8_scalability")
    by_strategy: Dict[str, List] = {}
    for variant in scn.variants:
        by_strategy.setdefault(variant.strategy, []).append(variant)
    base_variant = by_strategy.pop("Single")[0]
    base_run, _ = run_bench_variant(scn, base_variant, seed=seed, scale=scale)
    base = base_run.steady_state_throughput(0.4)
    rows = []
    data: Dict[str, List[float]] = {}
    for name, variants in by_strategy.items():
        vals = []
        for variant in sorted(variants, key=lambda v: v.n_mds):
            r, _ = run_bench_variant(scn, variant, seed=seed, scale=scale)
            vals.append(r.steady_state_throughput(0.4) / base)
        rows.append([name, *[round(v, 2) for v in vals]])
        data[name] = vals
    rep.add_table(["strategy", "2 MDS", "3 MDS", "4 MDS", "5 MDS"], rows)
    rep.put("scalability", data)
    rep.put("paper_origami", _PAPER_FIG8_ORIGAMI)
    return rep


# =====================================================================
# Fig. 9 — three real-world workloads, metadata-only and end-to-end
# =====================================================================

_PAPER_FIG9_GAIN = {"rw": 1.733, "ro": 1.543, "wi": 1.125}


def fig9_realworld(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Report:
    """Fig. 9: throughput on Trace-RW / Trace-RO / Trace-WI, without and with
    the data path.

    Paper: Origami wins everywhere — metadata throughput +73.3%/+54.3%/+12.5%
    over the second-best baseline; end-to-end gains compress to 1.11–1.37×.
    """
    scale = scale or get_scale()
    rep = Report(
        "Fig 9 — real-world workloads",
        "Origami vs baselines on three traces; paper gains over 2nd best: "
        "RW +73.3%, RO +54.3%, WI +12.5%",
    )
    datapath = dict(n_servers=8, bandwidth_mb_per_s=800.0, mean_file_kb=32.0, per_op_overhead_ms=0.008)
    meta_rows, e2e_rows = [], []
    data: Dict[str, Dict[str, float]] = {"meta": {}, "e2e": {}}
    for kind, label in (("rw", "Trace-RW"), ("ro", "Trace-RO"), ("wi", "Trace-WI")):
        meta: Dict[str, float] = {}
        e2e: Dict[str, float] = {}
        for name in STRATEGIES:
            r = run_strategy(name, kind, scale, seed=seed)
            meta[name] = r.steady_state_throughput(0.4)
            rd = run_strategy(name, kind, scale, seed=seed, datapath=datapath)
            dur_s = rd.duration_ms / 1000.0
            e2e[name] = rd.data_ops_completed / dur_s if dur_s > 0 else 0.0
        second_best = max(v for k, v in meta.items() if k != "Origami")
        gain = meta["Origami"] / second_best
        meta_rows.append(
            [label, *[round(meta[n] / 1000, 1) for n in STRATEGIES], round(gain, 2), _PAPER_FIG9_GAIN[kind]]
        )
        sb_e2e = max(v for k, v in e2e.items() if k != "Origami")
        e2e_rows.append(
            [label, *[round(e2e[n] / 1000, 1) for n in STRATEGIES], round(e2e["Origami"] / sb_e2e if sb_e2e else 0.0, 2)]
        )
        data["meta"][kind] = meta
        data["e2e"][kind] = e2e
    rep.add_table(
        ["trace", *STRATEGIES, "gain vs 2nd", "paper gain"],
        meta_rows,
        "Fig 9a: metadata throughput (kops/s)",
    )
    rep.add_table(
        ["trace", *STRATEGIES, "gain vs 2nd"],
        e2e_rows,
        "Fig 9b: end-to-end file throughput (kops/s, data path on)",
    )
    rep.put("fig9", data)
    return rep


# =====================================================================
# Theorem 1 — greedy vs exhaustive optimality gap
# =====================================================================


def theorem1_gap(seed: int = 0, n_instances: int = 6) -> Report:
    """Empirical Theorem 1: greedy JCT minus exhaustive-optimal JCT < Δ."""
    from repro.namespace.builder import build_balanced
    from repro.workloads.trace import TraceBuilder

    rep = Report(
        "Theorem 1 — Meta-OPT optimality gap",
        "On small instances: greedy JCT - optimal JCT must lie in [0, Δ)",
    )
    rows = []
    params = CostParams()
    for inst in range(n_instances):
        ssf = SeedSequenceFactory(seed + inst)
        rng = ssf.stream("t1")
        built = build_balanced(depth=2, fanout=2, files_per_dir=2)
        tree = built.tree
        pmap = PartitionMap(tree, n_mds=2)
        tb = TraceBuilder()
        dirs = list(tree.iter_dirs())
        w = rng.zipf_weights(len(dirs), 1.2)
        for i, d in enumerate(rng.choice(dirs, size=250, p=w)):
            tb.stat(int(d), f"n{i}")
        trace = tb.build()
        base_jct = evaluate_trace(trace, tree, pmap, params).jct
        delta = base_jct * 0.4
        greedy = meta_opt(trace, tree, pmap, params, delta=delta)
        optimal = exhaustive_opt(trace, tree, pmap, params, delta=delta, max_depth=3)
        gap = greedy.jct_after - optimal.jct_after
        rows.append([inst, base_jct, greedy.jct_after, optimal.jct_after, gap, delta, gap < delta])
    rep.add_table(
        ["instance", "base JCT", "greedy JCT", "optimal JCT", "gap", "Δ", "gap < Δ"],
        rows,
    )
    rep.put("all_within_bound", all(r[-1] for r in rows))
    return rep


# =====================================================================
# Ablations
# =====================================================================


def ablation_delta(scale: Optional[ExperimentScale] = None, seed: int = 7) -> Report:
    """Δ sensitivity: Meta-OPT's imbalance guard vs achieved JCT and #moves."""
    scale = scale or get_scale()
    params = default_params()
    built, trace = build_workload("rw", scale.train_ops // 2, seed)
    pmap = PartitionMap(built.tree, n_mds=5)
    base = evaluate_trace(trace, built.tree, pmap, params).jct
    rep = Report(
        "Ablation — Δ (imbalance guard) sensitivity",
        "Tighter Δ admits fewer moves; looser Δ risks the Theorem-1 gap",
    )
    rows = []
    data = {}
    for frac in (0.01, 0.05, 0.2, 0.5, 1.0):
        delta = base * frac
        res = meta_opt(trace, built.tree, pmap, params, delta=delta, max_migrations=64)
        rows.append([frac, delta, len(res.decisions), res.jct_after, res.improvement])
        data[frac] = {"moves": len(res.decisions), "improvement": res.improvement}
    rep.add_table(["Δ/JCT", "Δ (ms)", "migrations", "JCT after", "improvement"], rows)
    rep.put("delta_sweep", data)
    return rep


def ablation_cache_depth(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Report:
    """Near-root cache depth vs RPC/request and throughput (Origami)."""
    scale = scale or get_scale()
    rep = Report(
        "Ablation — near-root cache depth",
        "Depth 0 disables the cache; deeper thresholds hide more of the path",
    )
    rows = []
    for depth in (0, 1, 2, 3, 4):
        r = run_strategy("Origami", "rw", scale, seed=seed, cache_depth=depth)
        rows.append(
            [depth, r.steady_state_throughput(0.4) / 1000, r.rpcs_per_request, r.cache_hit_rate]
        )
    rep.add_table(["cache depth", "kops/s", "rpc/req", "hit rate"], rows)
    return rep


def ablation_models(scale: Optional[ExperimentScale] = None, seed: int = 7) -> Report:
    """Model families: accuracy differs, decisions agree (§4.3 observation)."""
    scale = scale or get_scale()
    params = default_params()
    built, trace = build_workload("rw", scale.train_ops, seed)
    dataset, _ = collect_training_data(
        built.tree, trace, n_mds=5, params=params, delta=50.0,
        ops_per_epoch=scale.train_epoch_ops,
    )
    reports = train_models(dataset, seed=seed, gbdt_rounds=scale.gbdt_rounds)
    rep = Report(
        "Ablation — model families",
        "Paper: slight accuracy differences, near-identical migration choices "
        "(high top-decile agreement is what Meta-OPT needs)",
    )
    rows = [
        [m.name, m.rmse, m.r2, m.spearman, m.top_decile_overlap]
        for m in reports.values()
    ]
    rep.add_table(["model", "RMSE", "R2", "Spearman", "top-10% overlap"], rows)
    rep.put("models", {m.name: {"rmse": m.rmse, "r2": m.r2, "spearman": m.spearman, "top_decile": m.top_decile_overlap} for m in reports.values()})
    return rep


def ablation_epoch_length(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Report:
    """Epoch length: balancing reactivity vs churn."""
    scale = scale or get_scale()
    rep = Report(
        "Ablation — epoch length",
        "Short epochs react faster but decide on noisier statistics",
    )
    rows = []
    for epoch_ms in (25.0, 50.0, 100.0, 200.0, 400.0):
        built, trace = build_workload("rw", scale.n_ops, seed)
        policy, n_mds = make_policy("Origami", "rw", scale)
        config = SimConfig(
            n_mds=n_mds, n_clients=scale.n_clients, epoch_ms=epoch_ms,
            params=default_params(), seed=seed,
        )
        r = run_simulation(built.tree, trace, policy, config)
        rows.append([epoch_ms, r.steady_state_throughput(0.4) / 1000, r.migrations])
    rep.add_table(["epoch (ms)", "kops/s", "migrations"], rows)
    return rep


def ablation_online_learning(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Report:
    """Extension: online continual learning vs offline training.

    ``Origami-online`` starts with no model at all, generates Bélády labels
    from each epoch's hindsight window, and retrains in place — testing the
    paper's "ML-native" framing taken to its conclusion.  Compared against
    the offline-trained Origami, the popularity baseline, and the heuristic.
    """
    from repro.training.online import OnlineOrigamiPolicy

    scale = scale or get_scale()
    rep = Report(
        "Ablation — online continual learning (Trace-RW)",
        "Origami-online trains itself during the run (no offline phase)",
    )
    rows = []
    data: Dict[str, float] = {}

    def run_policy(label, policy, n_mds=5):
        built, trace = build_workload("rw", scale.n_ops, seed)
        config = SimConfig(
            n_mds=n_mds,
            n_clients=scale.n_clients,
            epoch_ms=scale.epoch_ms,
            params=default_params(),
            seed=seed,
        )
        r = run_simulation(built.tree, trace, policy, config)
        tput = r.steady_state_throughput(0.4)
        extra = getattr(policy, "retrain_count", "-")
        rows.append([label, tput / 1000, r.rpcs_per_request, r.migrations, extra])
        data[label] = tput
        return r

    run_policy("Single", SingleMdsPolicy(), n_mds=1)
    run_policy("ML-tree", MLTreePolicy())
    run_policy("Lunule", LunulePolicy())
    from repro.balancers.adam_rl import AdamRLPolicy

    run_policy("AdaM-RL", AdamRLPolicy(seed=seed))
    run_policy(
        "Origami-online",
        OnlineOrigamiPolicy(
            delta=50.0, retrain_every=3, min_samples=400,
            gbdt_rounds=min(scale.gbdt_rounds, 60),
            max_moves_per_epoch=8, cooldown_epochs=2,
        ),
    )
    model = origami_model("rw", scale.name)
    run_policy("Origami (offline)", OrigamiPolicy(model, max_moves_per_epoch=8, cooldown_epochs=2))
    rep.add_table(
        ["policy", "kops/s", "rpc/req", "migrations", "retrains"], rows
    )
    rep.put("throughput", data)
    return rep


def ablation_mdtest_uniform(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Report:
    """Calibration: a perfectly uniform mdtest workload.

    On a workload with no hotspots every reasonable multi-MDS strategy should
    land near the same throughput, and reactive balancers should settle
    (spread once, then stop migrating) — "first, do no harm".
    """
    scale = scale or get_scale()
    rep = Report(
        "Ablation — mdtest uniform microbenchmark",
        "Uniform per-rank load: strategies should converge; balancers should settle",
    )
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name in ("Single", "Even", "C-Hash", "Lunule", "Origami"):
        r = run_strategy(name, "mdtest", scale, seed=seed)
        tput = r.steady_state_throughput(0.4)
        late = r.per_epoch[len(r.per_epoch) // 2 :]
        late_migr = sum(e.migrations for e in late)
        rows.append([name, tput / 1000, r.rpcs_per_request, r.migrations, late_migr])
        data[name] = {"tput": tput, "migrations": r.migrations, "late_migrations": late_migr}
    rep.add_table(
        ["strategy", "kops/s", "rpc/req", "migrations (all)", "migrations (late half)"], rows
    )
    rep.put("mdtest", data)
    return rep


def ablation_cache_design(scale: Optional[ExperimentScale] = None, seed: int = 42) -> Report:
    """Extension: quantify §4.2's cache-design claim.

    The paper argues the near-root cache "substantially mitigates the
    near-root hotspot issue while avoiding the significant consistency
    overhead associated with cache synchronization or lease management" —
    without measuring the alternative.  This ablation runs C-Hash under
    three client-cache designs (none / near-root / full TTL-lease cache) on
    the read-only web trace and the write-intensive cloud trace: leases win
    when nothing mutates, and pay recall traffic exactly where Trace-WI
    writes land.
    """
    scale = scale or get_scale()
    rep = Report(
        "Ablation — client cache design (none / near-root / lease)",
        "Quantifies the §4.2 claim that leases cost consistency work on writes",
    )
    rows = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    params = default_params()
    # a realistic recall must reach every client holding the lease — price it
    # as one RPC handling per client, versus the optimistic single-RPC recall
    bcast_cost = params.t_rpc * scale.n_clients
    variants = (
        ("none", {}),
        ("near-root", {}),
        ("lease", {}),
        ("lease-bcast", {"lease_recall_cost_ms": bcast_cost}),
    )
    for kind, label in (("ro", "Trace-RO"), ("wi", "Trace-WI")):
        data[kind] = {}
        for mode, extra in variants:
            built, trace = build_workload(kind, scale.n_ops, seed)
            config = SimConfig(
                n_mds=5,
                n_clients=scale.n_clients,
                epoch_ms=scale.epoch_ms,
                params=params,
                seed=seed,
                cache_mode="lease" if mode.startswith("lease") else mode,
                **extra,
            )
            from repro.fs.filesystem import OrigamiFS

            fs = OrigamiFS(built.tree, trace, CoarseHashPolicy(), config)
            r = fs.run()
            recalls = getattr(fs.cache, "recalls", 0)
            tput = r.steady_state_throughput(0.4)
            rows.append(
                [label, mode, tput / 1000, r.rpcs_per_request, r.cache_hit_rate, recalls]
            )
            data[kind][mode] = {
                "tput": tput,
                "rpc": r.rpcs_per_request,
                "recalls": float(recalls),
            }
    rep.add_table(
        ["trace", "cache", "kops/s", "rpc/req", "hit rate", "lease recalls"], rows
    )
    rep.put("cache_design", data)
    return rep
