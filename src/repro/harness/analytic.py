"""Analytic (queueing-free) epoch replay — the fast cousin of the DES.

Replays a trace epoch by epoch against the Eq. (1)/(2) cost model only: per
epoch it evaluates the window under the current partition (the bin-packing
JCT of §3.2), feeds the policy the same collector statistics the DES would,
and applies the returned migrations.  No event simulation, so it is
~20-50× faster than the DES — this is what the training pipeline uses
internally, exposed here as a first-class tool for quick strategy screening.

The throughput proxy is ``window_ops / JCT(window)``: exact relative
orderings under the model's assumptions, no queueing transients.  The
``test_analytic_vs_des`` integration test checks the proxy ranks strategies
the same way the DES does.

Unlike the DES, the analytic replay does not materialise namespace
mutations (costs are charged, the tree is not grown); workloads whose
balance-relevant statistics come from *existing* directories — all three
paper traces — are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.balancers.base import BalancePolicy, EpochContext
from repro.cluster.migration import MigrationLog
from repro.costmodel.evaluate import evaluate_trace
from repro.costmodel.params import CostParams
from repro.namespace.stats import AccessStats
from repro.namespace.tree import NamespaceTree
from repro.sim import SeedSequenceFactory
from repro.training.labelgen import record_window
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.workloads.trace import Trace

__all__ = ["AnalyticResult", "analytic_replay"]


@dataclass
class AnalyticResult:
    """Per-epoch analytic replay outcome."""

    strategy: str
    n_mds: int
    #: JCT of each epoch window (ms)
    jct_per_epoch: List[float] = field(default_factory=list)
    #: ops in each epoch window
    ops_per_epoch_list: List[int] = field(default_factory=list)
    #: per-MDS RCT loads of each epoch (list of arrays)
    loads_per_epoch: List[np.ndarray] = field(default_factory=list)
    migrations: int = 0
    total_rpcs: int = 0
    n_ops: int = 0
    mean_m: float = 0.0

    def throughput_proxy(self, skip_fraction: float = 0.3) -> float:
        """Steady-state ops per virtual second implied by the epoch JCTs."""
        if not self.jct_per_epoch:
            return 0.0
        skip = min(int(len(self.jct_per_epoch) * skip_fraction), len(self.jct_per_epoch) - 1)
        ops = sum(self.ops_per_epoch_list[skip:])
        ms = sum(self.jct_per_epoch[skip:])
        return ops / (ms / 1000.0) if ms > 0 else 0.0

    @property
    def rpcs_per_request(self) -> float:
        return self.total_rpcs / self.n_ops if self.n_ops else 0.0


def analytic_replay(
    tree: NamespaceTree,
    trace: "Trace",
    policy: BalancePolicy,
    n_mds: int,
    params: CostParams,
    ops_per_epoch: int = 5000,
    seed: int = 0,
    oracle_window_ops: int = 5000,
) -> AnalyticResult:
    """Epoch-by-epoch analytic evaluation of ``policy`` on ``trace``."""
    ssf = SeedSequenceFactory(seed)
    rng = ssf.stream("analytic-policy")
    pmap = policy.setup(tree, n_mds, rng)
    stats = AccessStats(tree)
    log = MigrationLog()
    result = AnalyticResult(strategy=policy.name, n_mds=pmap.n_mds)

    windows = list(trace.epochs(ops_per_epoch))
    m_weighted = 0.0
    for e, (_, window) in enumerate(windows):
        load = evaluate_trace(window, tree, pmap, params)
        result.jct_per_epoch.append(load.jct)
        result.ops_per_epoch_list.append(load.n_requests)
        result.loads_per_epoch.append(load.rct_per_mds.copy())
        result.total_rpcs += load.total_rpcs
        result.n_ops += load.n_requests
        m_weighted += load.mean_m * load.n_requests

        record_window(stats, window)
        snapshot = stats.snapshot_and_reset()
        nxt = windows[e + 1][1] if e + 1 < len(windows) else window[0:0]
        ctx = EpochContext(
            tree=tree,
            pmap=pmap,
            epoch=e,
            snapshot=snapshot,
            mds_load=load.rct_per_mds,
            params=params,
            rng=rng,
            oracle_window=nxt[:oracle_window_ops],
            completed_window=window,
        )
        for decision in policy.rebalance(ctx):
            try:
                log.apply(pmap, decision, epoch=e)
            except ValueError:
                continue  # stale decision (same semantics as the Migrator)
    result.migrations = log.total_migrations
    result.mean_m = m_weighted / result.n_ops if result.n_ops else 0.0
    return result
