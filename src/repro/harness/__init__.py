"""Experiment harness: regenerates every table and figure of the paper.

Each ``fig*``/``table*`` function in :mod:`~repro.harness.experiments` runs
the corresponding experiment end-to-end (workload generation → model
training where needed → DES runs) and returns a structured result carrying
both the measured values and the paper's reported values, so the printed
report reads as a direct paper-vs-reproduction comparison.

Scale: experiments default to a laptop-friendly size (~60k-op traces).  Set
``REPRO_SCALE=full`` in the environment for larger runs closer to the
paper's durations, or ``REPRO_SCALE=smoke`` for CI-speed sanity runs.
"""

from repro.harness.analytic import AnalyticResult, analytic_replay
from repro.harness.config import ExperimentScale, get_scale
from repro.harness.report import Report, format_table
from repro.harness import experiments

__all__ = [
    "experiments",
    "Report",
    "format_table",
    "ExperimentScale",
    "get_scale",
    "analytic_replay",
    "AnalyticResult",
]
