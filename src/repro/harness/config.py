"""Experiment sizing and shared defaults.

One knob (``REPRO_SCALE`` or an explicit :class:`ExperimentScale`) scales
every experiment: ``smoke`` for CI, ``default`` for interactive runs,
``full`` for paper-closest durations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.costmodel.params import CostParams

__all__ = ["ExperimentScale", "get_scale", "SCALES", "default_params"]


@dataclass(frozen=True)
class ExperimentScale:
    name: str
    #: operations in each measured trace
    n_ops: int
    #: operations in the training trace (Origami's model)
    train_ops: int
    #: ops per training epoch window
    train_epoch_ops: int
    #: GBDT boosting rounds for the production model
    gbdt_rounds: int
    #: client threads for saturation runs
    n_clients: int
    #: virtual epoch length (ms)
    epoch_ms: float
    #: namespace-size multiplier applied by ``build_workload`` (1.0 keeps
    #: every generator at its paper-default tree, bit-identical to before
    #: the knob existed; the ``large`` tier uses it to reach ~1M inodes)
    tree_scale: float = 1.0


SCALES = {
    "smoke": ExperimentScale("smoke", 15_000, 12_000, 2_000, 30, 120, 60.0),
    "default": ExperimentScale("default", 60_000, 40_000, 4_000, 80, 300, 100.0),
    "full": ExperimentScale("full", 200_000, 80_000, 5_000, 400, 400, 100.0),
    # the million-entity hot-path tier: ~1.01M live inodes on the cloud
    # tree (50 tenants x 256), 100k closed-loop clients; paired with 64-MDS
    # variants in the `scale_large_hotpath` bench scenario
    "large": ExperimentScale("large", 200_000, 40_000, 4_000, 300, 100_000, 100.0, 256.0),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve the experiment scale (argument beats ``$REPRO_SCALE`` beats default)."""
    key = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALES[key]
    except KeyError:
        raise ValueError(f"unknown scale {key!r}; choose from {sorted(SCALES)}") from None


def default_params(cache_depth: int = 2) -> CostParams:
    """The cluster cost parameters used across experiments (§5.1 setup)."""
    return CostParams(cache_depth=cache_depth)
