"""Imbalance factor (Lunule's metric) over cluster load vectors.

Definition (§5.3): ranges 0..1, 0 = perfectly even, 1 = everything on one
MDS.  For a load vector ``L`` over ``n`` MDSs::

    IF = (max(L) - mean(L)) / (sum(L) - mean(L))

which is 0 when all entries equal and exactly 1 when a single MDS carries the
whole load (max = sum), matching the paper's "an Imbalance Factor of 1 means
all requests go to a single MDS" for any cluster size.

The paper evaluates four load metrics (Fig. 6): QPS (requests processed),
RPCs handled, Inodes stored, and BusyTime (metadata processing time);
:class:`ImbalanceReport` bundles all four.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = ["imbalance_factor", "ImbalanceReport"]


def imbalance_factor(loads: Sequence[float]) -> float:
    """Imbalance factor of a per-MDS load vector (0 = even, 1 = one hot MDS)."""
    arr = np.asarray(loads, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("loads must be a non-empty 1-D vector")
    if np.any(arr < 0):
        raise ValueError("loads must be non-negative")
    if arr.size == 1:
        return 0.0
    total = arr.sum()
    if total == 0:
        return 0.0
    mean = total / arr.size
    # clamp: equal loads can yield a tiny negative numerator in floating point
    return float(min(max((arr.max() - mean) / (total - mean), 0.0), 1.0))


@dataclass
class ImbalanceReport:
    """Fig. 6's four imbalance metrics for one strategy/run."""

    qps: float
    rpcs: float
    inodes: float
    busytime: float

    @classmethod
    def from_loads(
        cls,
        qps: Sequence[float],
        rpcs: Sequence[float],
        inodes: Sequence[float],
        busytime: Sequence[float],
    ) -> "ImbalanceReport":
        return cls(
            qps=imbalance_factor(qps),
            rpcs=imbalance_factor(rpcs),
            inodes=imbalance_factor(inodes),
            busytime=imbalance_factor(busytime),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "QPS": self.qps,
            "RPCs": self.rpcs,
            "Inodes": self.inodes,
            "BusyTime": self.busytime,
        }
