"""Metadata-cluster state: partition map, migrations, imbalance metrics.

A *partition* assigns every directory to one MDS; files always live with
their parent directory (directories are the balancing unit).  The partition
map supports the two access patterns the rest of the system needs:

* point queries and subtree migrations (the Migrator, hash placement);
* bulk vectorised views (owner arrays, boundary masks, uniform-subtree
  masks) that feed the analytic cost model and Meta-OPT's candidate
  enumeration.
"""

from repro.cluster.imbalance import ImbalanceReport, imbalance_factor
from repro.cluster.migration import MigrationDecision, MigrationLog
from repro.cluster.partition import PartitionMap

__all__ = [
    "PartitionMap",
    "MigrationDecision",
    "MigrationLog",
    "imbalance_factor",
    "ImbalanceReport",
]
