"""Migration decisions and their application log.

A decision is the triple the paper's Migrator consumes: ``(subtree path,
source MDS, destination MDS)``.  The log records what moved and how much,
which feeds the migration-overhead accounting in the DES (moving metadata
costs the source and destination MDSs busy time proportional to the number
of entries moved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.partition import PartitionMap

__all__ = ["MigrationDecision", "MigrationLog"]


@dataclass(frozen=True)
class MigrationDecision:
    """One subtree move: migrate ``subtree_root``'s directory subtree to ``dst``."""

    subtree_root: int
    src: int
    dst: int
    #: model-predicted benefit (ms of JCT saved); diagnostics only
    predicted_benefit: float = 0.0

    def validate(self, pmap: PartitionMap) -> None:
        if self.src == self.dst:
            raise ValueError("src == dst is not a migration")
        if not 0 <= self.dst < pmap.n_mds:
            raise ValueError(f"dst {self.dst} out of range")
        actual = pmap.owner(self.subtree_root)
        if actual != self.src:
            raise ValueError(
                f"subtree {self.subtree_root} is owned by {actual}, not {self.src}"
            )


@dataclass
class AppliedMigration:
    decision: MigrationDecision
    dirs_moved: int
    inodes_moved: int
    epoch: int


@dataclass
class MigrationLog:
    """Chronological record of applied migrations."""

    applied: List[AppliedMigration] = field(default_factory=list)

    def apply(
        self, pmap: PartitionMap, decision: MigrationDecision, epoch: int = 0
    ) -> AppliedMigration:
        """Validate and execute ``decision`` against ``pmap``; record it."""
        decision.validate(pmap)
        tree = pmap.tree
        idx = tree.dfs_index()
        dirs = idx.dirs_in_subtree(decision.subtree_root)
        file_counts = tree.child_file_counts()
        inodes = int(dirs.shape[0] + file_counts[dirs].sum())
        pmap.migrate_subtree(decision.subtree_root, decision.dst)
        rec = AppliedMigration(
            decision=decision, dirs_moved=int(dirs.shape[0]), inodes_moved=inodes, epoch=epoch
        )
        self.applied.append(rec)
        return rec

    @property
    def total_migrations(self) -> int:
        return len(self.applied)

    @property
    def total_inodes_moved(self) -> int:
        return sum(a.inodes_moved for a in self.applied)

    def in_epoch(self, epoch: int) -> List[AppliedMigration]:
        return [a for a in self.applied if a.epoch == epoch]
