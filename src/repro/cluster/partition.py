"""Directory → MDS ownership map.

Ownership is stored densely (``int16`` per ino, ``-1`` for non-directories),
so every consumer that wants bulk views (cost evaluation, Meta-OPT candidate
enumeration, imbalance metrics) works on plain NumPy arrays.

Two placement regimes share this one class:

* **subtree placement** (CephFS/Lunule/Origami style): new directories
  inherit their parent's owner; ownership changes only through
  :meth:`migrate_subtree`.
* **hash placement** (C-Hash / F-Hash): a ``placement`` callable pins each
  new directory independently; :meth:`assign_dir` applies it.

``version`` increments on every ownership change; caches (path-m memo,
child-owner multisets) key on it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.namespace.tree import ROOT_INO, NamespaceTree

__all__ = ["PartitionMap"]


class PartitionMap:
    """Assignment of live directories to MDS ranks ``0..n_mds-1``."""

    def __init__(
        self,
        tree: NamespaceTree,
        n_mds: int,
        initial_owner: int = 0,
        placement: Optional[Callable[["PartitionMap", int, str], int]] = None,
        file_placement: Optional[Callable[["PartitionMap", int, str], int]] = None,
    ):
        if n_mds < 1:
            raise ValueError("need at least one MDS")
        if not 0 <= initial_owner < n_mds:
            raise ValueError(f"initial owner {initial_owner} out of range")
        self.tree = tree
        self.n_mds = n_mds
        #: callable (pmap, parent_ino, name) -> owner for newly created dirs;
        #: None means "inherit the parent's owner" (subtree placement).
        self.placement = placement
        #: where *file inodes* live relative to their parent's dentry shard:
        #: None colocates them (subtree/coarse-hash regimes); fine-grained
        #: hashing sets a callable, splitting file mutations across shards —
        #: the distributed-transaction penalty CFS [40] documents.
        self.file_placement = file_placement
        self._lsdir_cache: Dict[int, tuple] = {}
        # physical storage may exceed the logical size (amortised doubling so
        # per-file-create growth is O(1) amortised, never O(capacity))
        self._owner = np.full(tree.capacity, -1, dtype=np.int16)
        self._filled = tree.capacity
        mask = tree.dir_mask()
        self._owner[mask] = initial_owner
        self.version = 0
        #: bumped only when *directory ownership* may have changed — unlike
        #: ``version``, which also ticks on pure file-fill syncs.  Consumers
        #: caching per-directory routing decisions (the client plan cache)
        #: key on this so file-heavy replay does not thrash them.
        self.dir_version = 0
        self._tree_version = tree.version
        self._view: Optional[np.ndarray] = None

    # ------------------------------------------------------------ sync/grow
    def _sync(self) -> None:
        """Grow/refresh the owner array after tree mutations.

        Newly created directories get their owner from ``placement`` (or
        inherit the parent's); deleted directories drop to ``-1``.  File
        creation (the dominant mutation during replay) costs O(1) amortised.
        """
        tree = self.tree
        cap = tree.capacity
        version_changed = self._tree_version != tree.version
        if not version_changed and self._filled == cap:
            return
        if getattr(self, "_syncing", False):
            # placement callables may query owner()/new_dir_owner() while we
            # are filling new inos; parents precede children in ino order, so
            # the partially-filled array is already correct for them
            return
        self._syncing = True
        if self._owner.shape[0] < cap:
            phys = np.full(max(cap, self._owner.shape[0] * 2), -1, dtype=np.int16)
            phys[: self._owner.shape[0]] = self._owner
            self._owner = phys
        filled_dir = False
        if self._filled < cap:
            # fill new inos in ino order (parents always precede children)
            for ino in range(self._filled, cap):
                if not tree._alive[ino] or tree._ftype[ino] != 0:
                    continue
                filled_dir = True
                if self.placement is not None:
                    self._owner[ino] = self.placement(self, int(tree._parent[ino]), tree._name[ino])
                else:
                    po = self._owner[tree._parent[ino]]
                    self._owner[ino] = po if po >= 0 else 0
            self._filled = cap
        if version_changed:
            # directory structure changed: clear owners of dead/non-dir inos
            mask = tree.dir_mask()
            view = self._owner[:cap]
            view[~mask] = -1
            # any live dir left unowned (e.g. re-created) inherits/places
            missing = np.nonzero(mask & (view == -1))[0]
            parents = tree.parent_array()
            for ino in missing:
                ino = int(ino)
                if self.placement is not None:
                    view[ino] = self.placement(self, int(parents[ino]), tree.name(ino))
                else:
                    po = view[int(parents[ino])]
                    view[ino] = po if po >= 0 else 0
        self._tree_version = tree.version
        self.version += 1
        if version_changed or filled_dir:
            self.dir_version += 1
        self._syncing = False

    # -------------------------------------------------------------- queries
    def owner(self, ino: int) -> int:
        """Owner of a directory (or of a file's parent directory)."""
        self._sync()
        d = self.tree.owning_dir(ino)
        o = int(self._owner[d])
        if o < 0:
            raise KeyError(f"ino {d} has no owner (not a live directory?)")
        return o

    def owner_array(self) -> np.ndarray:
        """Dense owner view indexed by ino (-1 for non-dirs). Do not mutate."""
        self._sync()
        # slicing allocates a fresh view object every call (hot: once per op);
        # reuse it until capacity changes — in-place owner edits alias through
        view = self._view
        cap = self.tree.capacity
        if view is not None and view.shape[0] == cap:
            return view
        self._view = view = self._owner[:cap]
        return view

    def new_dir_owner(self, parent_ino: int, name: str) -> int:
        """Where a directory created as ``parent/name`` would land."""
        self._sync()
        if self.placement is not None:
            return self.placement(self, parent_ino, name)
        return self.owner(parent_ino)

    def is_boundary(self, dir_ino: int) -> bool:
        """True iff ``dir_ino`` is owned differently from its parent (subtree root)."""
        self._sync()
        if dir_ino == ROOT_INO:
            return False
        return self._owner[dir_ino] != self._owner[self.tree.parent(dir_ino)]

    def boundary_mask(self) -> np.ndarray:
        """Boolean array indexed by ino: live dir whose owner differs from parent's."""
        self._sync()
        tree = self.tree
        parents = tree.parent_array()
        mask = tree.dir_mask()
        out = np.zeros(tree.capacity, dtype=bool)
        dirs = np.nonzero(mask)[0]
        out[dirs] = self._owner[dirs] != self._owner[parents[dirs]]
        out[ROOT_INO] = False
        return out

    def uniform_subtree_mask(self) -> np.ndarray:
        """Boolean array: directory subtrees with a single owner throughout.

        These are Meta-OPT's migration candidates — migrating a mixed-owner
        subtree would not be a single (src, dst) move.  Computed with two
        DFS-order segment min/max sweeps, O(#dirs).
        """
        self._sync()
        idx = self.tree.dfs_index()
        owners = self._owner[: self.tree.capacity].astype(np.float64)
        owners_inf = owners.copy()
        owners_inf[owners < 0] = np.inf
        # min over subtree
        vals = owners_inf[idx.order]
        n = vals.shape[0]
        # running min/max per subtree via np.minimum.accumulate trick does not
        # give segment queries; use a sparse table-free approach: since
        # subtree == contiguous DFS interval, use prefix min via sorted
        # segment reduction. For clarity and O(n log n), build a sparse table.
        mins = _interval_reduce(vals, idx, np.minimum)
        maxs = _interval_reduce(vals, idx, np.maximum)
        out = np.zeros(self.tree.capacity, dtype=bool)
        live = idx.order
        out[live] = mins[live] == maxs[live]
        return out

    # ------------------------------------------------------------ mutations
    def migrate_subtree(self, root_ino: int, dst: int) -> int:
        """Reassign every directory in ``root_ino``'s subtree to ``dst``.

        Returns the number of directories moved (counting those already on
        ``dst`` — the caller's MigrationLog can subtract if it cares).
        """
        self._sync()
        if not 0 <= dst < self.n_mds:
            raise ValueError(f"dst {dst} out of range")
        self.tree._check_dir(root_ino)
        idx = self.tree.dfs_index()
        dirs = idx.dirs_in_subtree(root_ino)
        self._owner[dirs] = dst
        self.version += 1
        self.dir_version += 1
        return int(dirs.shape[0])

    def assign_dir(self, dir_ino: int, mds: int) -> None:
        """Pin a single directory (hash placement bootstrap)."""
        self._sync()
        if not 0 <= mds < self.n_mds:
            raise ValueError(f"mds {mds} out of range")
        self.tree._check_dir(dir_ino)
        self._owner[dir_ino] = mds
        self.version += 1
        self.dir_version += 1

    def assign_bulk(self, owners: np.ndarray) -> None:
        """Overwrite ownership for all live dirs from an ino-indexed array."""
        self._sync()
        owners = np.asarray(owners)
        if owners.shape[0] != self.tree.capacity:
            raise ValueError("owners array must be ino-indexed with tree capacity")
        mask = self.tree.dir_mask()
        vals = owners[mask]
        if vals.size and (vals.min() < 0 or vals.max() >= self.n_mds):
            raise ValueError("owner out of range in bulk assignment")
        self._owner[: self.tree.capacity][mask] = owners[mask].astype(np.int16)
        self.version += 1
        self.dir_version += 1

    # ------------------------------------------------------------- summaries
    def dirs_per_mds(self) -> np.ndarray:
        self._sync()
        counts = np.zeros(self.n_mds, dtype=np.int64)
        live = self._owner[self._owner >= 0]
        np.add.at(counts, live.astype(np.int64), 1)
        return counts

    def inodes_per_mds(self) -> np.ndarray:
        """Metadata entries per MDS: each dir counts itself + its child files."""
        self._sync()
        tree = self.tree
        per_dir = 1 + tree.child_file_counts()
        counts = np.zeros(self.n_mds, dtype=np.int64)
        mask = tree.dir_mask()
        dirs = np.nonzero(mask)[0]
        np.add.at(counts, self._owner[dirs].astype(np.int64), per_dir[dirs])
        return counts

    def child_owner_counts(self, dir_ino: int) -> Dict[int, int]:
        """Multiset of owners among ``dir_ino``'s child directories."""
        self._sync()
        out: Dict[int, int] = {}
        for child in self.tree.children(dir_ino).values():
            o = self._owner[child]
            if o >= 0:
                out[int(o)] = out.get(int(o), 0) + 1
        return out

    def file_owner(self, parent_ino: int, name: str) -> int:
        """MDS storing the inode of file ``parent/name``.

        With colocating placement this is the parent's owner; fine-grained
        hashing shards file inodes independently.
        """
        if self.file_placement is not None:
            return self.file_placement(self, parent_ino, name)
        return self.owner(parent_ino)

    def lsdir_owners(self, dir_ino: int) -> frozenset:
        """Distinct *other* MDSs holding this directory's children.

        Includes child directories always, and child file inodes when file
        placement shards them.  Cached per partition version: lsdir-heavy
        traces hit the same hot directories repeatedly.
        """
        self._sync()
        hit = self._lsdir_cache.get(dir_ino)
        if hit is not None and hit[0] == (self.version, self.tree.version):
            return hit[1]
        own = self.owner(dir_ino)
        others = {
            int(self._owner[c])
            for c in self.tree.children(dir_ino).values()
            if self._owner[c] >= 0 and self._owner[c] != own
        }
        if self.file_placement is not None:
            for name, c in self.tree.children(dir_ino).items():
                if self._owner[c] < 0:  # a file entry
                    o = self.file_placement(self, dir_ino, name)
                    if o != own:
                        others.add(int(o))
        result = frozenset(others)
        self._lsdir_cache[dir_ino] = ((self.version, self.tree.version), result)
        return result

    def lsdir_fanout(self, dir_ino: int) -> int:
        """Eq. (2)'s ``i`` for lsdir: distinct *other* MDSs holding children."""
        return len(self.lsdir_owners(dir_ino))

    def copy(self) -> "PartitionMap":
        """Independent copy sharing the same tree (what-if evaluation)."""
        self._sync()
        dup = PartitionMap.__new__(PartitionMap)
        dup.tree = self.tree
        dup.n_mds = self.n_mds
        dup.placement = self.placement
        dup.file_placement = self.file_placement
        dup._lsdir_cache = {}
        dup._owner = self._owner.copy()
        dup._filled = self._filled
        dup.version = self.version
        dup.dir_version = self.dir_version
        dup._tree_version = self._tree_version
        dup._view = None
        return dup


def _interval_reduce(vals: np.ndarray, idx, op) -> np.ndarray:
    """Reduce ``vals`` (in DFS order) over every subtree interval with ``op``.

    Sparse-table (binary lifting) range query: build log-levels once, then
    answer every directory's [tin, tout) interval in O(1).  Total
    O(n log n) — the candidate-enumeration hot path calls this twice per
    Meta-OPT iteration.
    """
    n = vals.shape[0]
    out = np.full(idx.tin.shape[0], np.nan)
    if n == 0:
        return out
    levels = [vals]
    k = 1
    while (1 << k) <= n:
        prev = levels[-1]
        span = 1 << (k - 1)
        levels.append(op(prev[: prev.shape[0] - span], prev[span:]))
        k += 1
    live = idx.order
    lo = idx.tin[live]
    hi = idx.tout[live]
    length = hi - lo
    # level to use per query
    lev = np.zeros(length.shape[0], dtype=np.int64)
    nz = length > 0
    lev[nz] = np.floor(np.log2(length[nz])).astype(np.int64)
    res = np.empty(length.shape[0])
    for L in np.unique(lev):
        m = lev == L
        span = 1 << int(L)
        table = levels[int(L)]
        a = table[lo[m]]
        b = table[hi[m] - span]
        res[m] = op(a, b)
    out[live] = res
    return out
