"""Sorted in-memory write buffer for the LSM store.

Backed by a plain dict plus a lazily maintained sorted key list: point ops
are O(1); the sorted view is (re)built only when a scan or a flush needs it.
That matches the metadata access pattern — point lookups dominate, scans
happen at ``lsdir`` and flush time.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

__all__ = ["MemTable", "TOMBSTONE"]

#: sentinel value marking a deletion (must survive into SSTables so older
#: runs' values stay shadowed until compaction drops the pair)
TOMBSTONE = b"\x00__tombstone__\x00"


class MemTable:
    """Mutable sorted run; the head of the LSM hierarchy."""

    def __init__(self) -> None:
        self._data: dict = {}
        self._sorted_keys: Optional[List[bytes]] = None
        self.bytes_written = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def approx_bytes(self) -> int:
        return self.bytes_written

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values must be bytes")
        if key not in self._data:
            self._sorted_keys = None
        self._data[key] = value
        self.bytes_written += len(key) + len(value)

    def delete(self, key: bytes) -> None:
        """Record a tombstone (shadows older runs until compacted away)."""
        self.put(key, TOMBSTONE)

    def get(self, key: bytes) -> Optional[bytes]:
        """Value for key; TOMBSTONE if deleted here; None if absent here."""
        return self._data.get(key)

    def _keys(self) -> List[bytes]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._data)
        return self._sorted_keys

    def scan(self, lo: bytes, hi: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Yield (key, value) for lo <= key < hi, in key order (tombstones included)."""
        keys = self._keys()
        i = bisect.bisect_left(keys, lo)
        j = bisect.bisect_left(keys, hi)
        for k in keys[i:j]:
            yield k, self._data[k]

    def items_sorted(self) -> List[Tuple[bytes, bytes]]:
        """All entries in key order (flush input)."""
        return [(k, self._data[k]) for k in self._keys()]

    def clear(self) -> None:
        self._data.clear()
        self._sorted_keys = None
        self.bytes_written = 0
