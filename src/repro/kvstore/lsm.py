"""The LSM store proper: memtable + guarded levels of SSTables.

PebblesDB's key idea (FLSM) is to partition each level by *guards* and allow
multiple overlapping runs within a guard, so compaction never rewrites data
across guard boundaries; this cuts write amplification at the price of a
bounded extra read fan-out inside one guard.  This implementation keeps that
structure:

* level 0: raw memtable flushes (may overlap arbitrarily);
* levels >= 1: guard-partitioned; each guard holds up to ``runs_per_guard``
  runs; when exceeded, the guard's runs merge into one and spill to the same
  guard one level down.

Statistics (:class:`StoreStats`) count seeks, run probes, merges, and bytes
rewritten so benchmarks can report read/write amplification.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.sstable import SSTable, merge_runs

__all__ = ["LSMStore", "StoreStats"]


@dataclass
class StoreStats:
    """Operation counters for amplification analysis."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    scans: int = 0
    flushes: int = 0
    compactions: int = 0
    runs_probed: int = 0
    bytes_flushed: int = 0
    bytes_compacted: int = 0
    # durability counters (all zero while the store runs purely in memory)
    wal_appends: int = 0
    wal_bytes: int = 0
    fsyncs: int = 0
    recoveries: int = 0

    def read_amplification(self) -> float:
        """Average runs probed per get."""
        return self.runs_probed / self.gets if self.gets else 0.0

    def write_amplification(self) -> float:
        """Bytes rewritten by compaction per byte flushed."""
        return (
            (self.bytes_flushed + self.bytes_compacted) / self.bytes_flushed
            if self.bytes_flushed
            else 0.0
        )

    def merge(self, other: "StoreStats") -> None:
        """Fold another store's counters into this one (cluster aggregation)."""
        self.puts += other.puts
        self.gets += other.gets
        self.deletes += other.deletes
        self.scans += other.scans
        self.flushes += other.flushes
        self.compactions += other.compactions
        self.runs_probed += other.runs_probed
        self.bytes_flushed += other.bytes_flushed
        self.bytes_compacted += other.bytes_compacted
        self.wal_appends += other.wal_appends
        self.wal_bytes += other.wal_bytes
        self.fsyncs += other.fsyncs
        self.recoveries += other.recoveries

    def as_dict(self) -> Dict[str, float]:
        """Raw counters plus derived amplifications (metrics/JSON surfacing)."""
        return {
            "puts": float(self.puts),
            "gets": float(self.gets),
            "deletes": float(self.deletes),
            "scans": float(self.scans),
            "flushes": float(self.flushes),
            "compactions": float(self.compactions),
            "runs_probed": float(self.runs_probed),
            "bytes_flushed": float(self.bytes_flushed),
            "bytes_compacted": float(self.bytes_compacted),
            "wal_appends": float(self.wal_appends),
            "wal_bytes": float(self.wal_bytes),
            "fsyncs": float(self.fsyncs),
            "recoveries": float(self.recoveries),
            "read_amplification": self.read_amplification(),
            "write_amplification": self.write_amplification(),
        }


class _Guard:
    """A key-range bucket within a level holding overlapping runs (newest first)."""

    __slots__ = ("lo", "runs")

    def __init__(self, lo: bytes):
        self.lo = lo
        self.runs: List[SSTable] = []


class LSMStore:
    """Guarded LSM store with point get/put/delete and ordered range scans."""

    def __init__(
        self,
        memtable_limit: int = 256,
        runs_per_guard: int = 3,
        level0_limit: int = 4,
        guard_fanout: int = 8,
        max_levels: int = 6,
    ):
        if memtable_limit < 1:
            raise ValueError("memtable_limit must be >= 1")
        self.memtable_limit = memtable_limit
        self.runs_per_guard = runs_per_guard
        self.level0_limit = level0_limit
        self.guard_fanout = guard_fanout
        self.max_levels = max_levels
        self.mem = MemTable()
        self.level0: List[SSTable] = []  # newest first
        # levels[i] for i>=1: sorted list of guards by lo key
        self.levels: List[List[_Guard]] = [[] for _ in range(max_levels)]
        self.stats = StoreStats()
        # durability attachment (None = purely in-memory, the seed behavior)
        self.backend = None
        self.backend_dir: Optional[str] = None
        self.last_recovery = None

    @classmethod
    def open(cls, data_dir: str, options=None, stats=None, sync_listener=None, **lsm_kwargs):
        """Open a durable store rooted at ``data_dir``, recovering any prior
        state (WAL replay + MANIFEST/SSTable reload).  See
        :func:`repro.durability.recovery.open_store`."""
        from repro.durability.recovery import open_store

        return open_store(
            data_dir, options=options, stats=stats, sync_listener=sync_listener, **lsm_kwargs
        )

    # ------------------------------------------------------------- write path
    def put(self, key: bytes, value: bytes) -> None:
        self.stats.puts += 1
        if self.backend is not None:
            self.backend.log_put(key, value)
        self.mem.put(key, value)
        if len(self.mem) >= self.memtable_limit:
            self._flush()

    def delete(self, key: bytes) -> None:
        self.stats.deletes += 1
        if self.backend is not None:
            self.backend.log_delete(key)
        self.mem.delete(key)
        if len(self.mem) >= self.memtable_limit:
            self._flush()

    def _flush(self) -> None:
        entries = self.mem.items_sorted()
        if not entries:
            return
        run = SSTable(entries)
        self.level0.insert(0, run)
        self.stats.flushes += 1
        self.stats.bytes_flushed += run.size_bytes
        self.mem.clear()
        flush_lsn = 0
        if self.backend is not None:
            self.backend.edit_add(0, None, run)
            # every record now in SSTables was logged at or before this LSN,
            # so the WAL prefix up to it is retirable once the commit lands
            flush_lsn = self.backend.last_appended_lsn
        if len(self.level0) > self.level0_limit:
            self._compact_level0()
        if self.backend is not None:
            self.backend.commit(flush_lsn)

    def flush(self) -> None:
        """Force the memtable down into level 0 (checkpoint/migration prep)."""
        self._flush()

    # -------------------------------------------------------------- compaction
    def _guards_for(self, level: int, keys: List[bytes]) -> None:
        """Create guards at ``level`` if absent, seeded by key-space samples."""
        if self.levels[level]:
            return
        # choose up to guard_fanout guard boundaries from the incoming keys
        n = min(self.guard_fanout, max(1, len(keys)))
        step = max(1, len(keys) // n)
        los = sorted({keys[i] for i in range(0, len(keys), step)})
        los[0] = b""  # first guard catches everything from the left
        self.levels[level] = [_Guard(lo) for lo in los]
        if self.backend is not None:
            self.backend.note_guards(level, los)

    def _guard_index(self, level: int, key: bytes) -> int:
        guards = self.levels[level]
        los = [g.lo for g in guards]
        return max(0, bisect.bisect_right(los, key) - 1)

    def _compact_level0(self) -> None:
        """Merge all level-0 runs and partition the result into level-1 guards."""
        self.stats.compactions += 1
        runs = self.level0
        self.level0 = []
        if self.backend is not None:
            for run in runs:
                self.backend.edit_remove(0, None, run)
        merged = merge_runs(runs, drop_tombstones=False)
        if not merged:
            return
        self.stats.bytes_compacted += sum(len(k) + len(v) for k, v in merged)
        self._guards_for(1, [k for k, _ in merged])
        self._push_into_level(1, merged)

    def _push_into_level(self, level: int, entries: List[Tuple[bytes, bytes]]) -> None:
        guards = self.levels[level]
        if not guards:
            self._guards_for(level, [k for k, _ in entries])
            guards = self.levels[level]
        # split entries by guard
        buckets: Dict[int, List[Tuple[bytes, bytes]]] = {}
        for k, v in entries:
            buckets.setdefault(self._guard_index(level, k), []).append((k, v))
        for gi, bucket in buckets.items():
            guard = guards[gi]
            run = SSTable(bucket)
            guard.runs.insert(0, run)
            if self.backend is not None:
                self.backend.edit_add(level, guard.lo, run)
            if len(guard.runs) > self.runs_per_guard:
                self._compact_guard(level, guard)

    def _compact_guard(self, level: int, guard: _Guard) -> None:
        """Merge a guard's runs; spill the result one level down (or rewrite in
        place at the bottom, dropping tombstones)."""
        self.stats.compactions += 1
        at_bottom = level >= self.max_levels - 1
        merged = merge_runs(guard.runs, drop_tombstones=at_bottom)
        self.stats.bytes_compacted += sum(len(k) + len(v) for k, v in merged)
        if self.backend is not None:
            for run in guard.runs:
                self.backend.edit_remove(level, guard.lo, run)
        guard.runs = []
        if not merged:
            return
        if at_bottom:
            run = SSTable(merged)
            guard.runs = [run]
            if self.backend is not None:
                self.backend.edit_add(level, guard.lo, run)
        else:
            self._push_into_level(level + 1, merged)

    # --------------------------------------------------------------- read path
    def get(self, key: bytes) -> Optional[bytes]:
        self.stats.gets += 1
        v = self.mem.get(key)
        if v is not None:
            return None if v == TOMBSTONE else v
        for run in self.level0:
            self.stats.runs_probed += 1
            v = run.get(key)
            if v is not None:
                return None if v == TOMBSTONE else v
        for level in range(1, self.max_levels):
            guards = self.levels[level]
            if not guards:
                continue
            guard = guards[self._guard_index(level, key)]
            for run in guard.runs:
                self.stats.runs_probed += 1
                v = run.get(key)
                if v is not None:
                    return None if v == TOMBSTONE else v
        return None

    def contains(self, key: bytes) -> bool:
        return self.get(key) is not None

    def scan(self, lo: bytes, hi: bytes) -> Iterator[Tuple[bytes, bytes]]:
        """Ordered scan of live entries with key in [lo, hi)."""
        self.stats.scans += 1
        # gather candidate entries newest-first so shadowing is easy
        shadow: Dict[bytes, bytes] = {}
        sources: List[Iterator[Tuple[bytes, bytes]]] = [self.mem.scan(lo, hi)]
        sources.extend(r.scan(lo, hi) for r in self.level0 if r.overlaps(lo, hi))
        for level in range(1, self.max_levels):
            for guard in self.levels[level]:
                for run in guard.runs:
                    if run.overlaps(lo, hi):
                        sources.append(run.scan(lo, hi))
        for src in sources:  # newest source first wins
            for k, v in src:
                if k not in shadow:
                    shadow[k] = v
        for k in sorted(shadow):
            if shadow[k] != TOMBSTONE:
                yield k, shadow[k]

    # -------------------------------------------------------------- lifecycle
    def sync(self) -> int:
        """Force the WAL group-commit batch durable (no-op without backend).

        Returns the number of records acknowledged by this call."""
        if self.backend is None:
            return 0
        return self.backend.sync()

    def close(self) -> None:
        """Clean shutdown: sync the WAL tail and release file handles.

        The memtable is *not* flushed — its contents live in the WAL and are
        replayed by the next :meth:`open`, which keeps close cheap and keeps
        the recovery path exercised on every clean reopen."""
        if self.backend is None:
            return
        self.backend.close()

    def crash(self) -> None:
        """Simulate a process crash: unacknowledged (unsynced) writes vanish.

        The store object is unusable afterwards; reopen via :meth:`open`."""
        if self.backend is None:
            return
        self.backend.crash()

    # ---------------------------------------------------------------- metrics
    def __len__(self) -> int:
        """Number of live keys (O(n) — debugging/tests only)."""
        return sum(1 for _ in self.scan(b"", b"\xff" * 64))

    def run_count(self) -> int:
        n = len(self.level0)
        for level in range(1, self.max_levels):
            for guard in self.levels[level]:
                n += len(guard.runs)
        return n
