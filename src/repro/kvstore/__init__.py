"""A from-scratch LSM-tree key-value store (local MDS inode store).

OrigamiFS stores each MDS's inodes in PebblesDB, a fragmented-LSM key-value
store, keyed by ``(parent inode number, file name)``.  This package supplies
the equivalent substrate: an in-memory LSM with a sorted memtable, immutable
SSTable runs, size-tiered compaction with PebblesDB-style *guards* (runs are
only merged within guard boundaries, trading read fan-out for write
amplification — the FLSM idea), tombstone deletes, and range scans (used by
``lsdir`` and by the Migrator to extract a subtree's records).

The store is deliberately synchronous — the DES layer charges virtual time
for operations using the cost model; this package provides correct semantics
plus operation *counts* (seeks, merges, bytes) so storage effects stay
observable.
"""

from repro.kvstore.lsm import LSMStore, StoreStats
from repro.kvstore.memtable import MemTable
from repro.kvstore.sstable import SSTable

__all__ = ["LSMStore", "StoreStats", "MemTable", "SSTable"]
