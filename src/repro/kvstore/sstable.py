"""Immutable sorted runs (SSTables) with binary-search point reads.

Each SSTable is a frozen, key-ordered array of entries plus a tiny bloom-ish
membership filter (a Python set of key hashes — exact, since we are in
memory; it exists so the store can count avoided seeks the way a real bloom
filter would).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["SSTable", "merge_runs"]


class SSTable:
    """An immutable sorted run of (key, value) pairs."""

    __slots__ = ("_keys", "_values", "_filter", "min_key", "max_key", "size_bytes",
                 "file_number")

    def __init__(self, entries: Sequence[Tuple[bytes, bytes]]):
        if not entries:
            raise ValueError("SSTable cannot be empty")
        keys = [k for k, _ in entries]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("SSTable entries must be strictly sorted by key")
        self._keys: List[bytes] = keys
        self._values: List[bytes] = [v for _, v in entries]
        self._filter = frozenset(hash(k) for k in keys)
        self.min_key = keys[0]
        self.max_key = keys[-1]
        self.size_bytes = sum(len(k) + len(v) for k, v in entries)
        # set by the durability backend when this run is persisted on disk
        self.file_number: Optional[int] = None

    def __len__(self) -> int:
        return len(self._keys)

    def maybe_contains(self, key: bytes) -> bool:
        """Filter check (no false negatives; here also no false positives)."""
        return hash(key) in self._filter

    def get(self, key: bytes) -> Optional[bytes]:
        if key < self.min_key or key > self.max_key or not self.maybe_contains(key):
            return None
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return self._values[i]
        return None

    def scan(self, lo: bytes, hi: bytes) -> Iterator[Tuple[bytes, bytes]]:
        i = bisect.bisect_left(self._keys, lo)
        j = bisect.bisect_left(self._keys, hi)
        for idx in range(i, j):
            yield self._keys[idx], self._values[idx]

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        return zip(self._keys, self._values)

    def overlaps(self, lo: bytes, hi: bytes) -> bool:
        """Does this run's key range intersect [lo, hi)?"""
        return self.min_key < hi and lo <= self.max_key


def merge_runs(
    runs: Sequence[SSTable], drop_tombstones: bool = False
) -> List[Tuple[bytes, bytes]]:
    """K-way merge of runs, newest first: earlier runs shadow later ones.

    With ``drop_tombstones`` (bottom-level compaction) deletion markers are
    removed entirely; otherwise they are preserved so they keep shadowing
    entries in runs below the compaction's scope.
    """
    from repro.kvstore.memtable import TOMBSTONE

    merged: dict = {}
    # iterate oldest -> newest so newer entries overwrite
    for run in reversed(list(runs)):
        for k, v in run.items():
            merged[k] = v
    out = []
    for k in sorted(merged):
        v = merged[k]
        if drop_tombstones and v == TOMBSTONE:
            continue
        out.append((k, v))
    return out
