"""Simulation checkpointing: snapshot a quiescent run, warm-restart it later.

A :class:`SimCheckpoint` captures everything needed to continue replaying a
trace from where a previous segment stopped:

* the **namespace tree** (exact internal arrays, so restored ino numbering
  is identical to the captured run — replay-order reconstruction would not
  guarantee that);
* the **partition map** (dense owner array, restored via ``assign_bulk``);
* every **RNG stream** the run has touched (``bit_generator.state`` of each
  stream in the run's :class:`~repro.sim.rng.SeedSequenceFactory` cache,
  plus the latency recorder's reservoir RNG and the fault injector's
  drop/backoff streams), so a resumed run draws the same random sequence an
  uninterrupted run would;
* the **virtual clock** (restored with :meth:`Environment.warp` onto the
  empty calendar of a freshly built cluster) and the run counters
  (cursor, completed/failed ops, RPCs, per-epoch metrics, latency
  reservoir, cache counters).

Per-MDS store contents come back one of two ways:

* **durable runs** (``SimConfig.data_dir``): the stores' own WAL + MANIFEST
  + SSTables on disk are the authoritative copy; restore simply reopens
  them through the normal crash-recovery path and skips the in-memory
  population pass entirely;
* **in-memory runs**: store contents are regenerated from the restored
  tree under the restored owner array — semantically identical to the
  captured stores (the live key set is exactly the tree's entries).

What a checkpoint deliberately does **not** carry (documented per-segment
state): balancer access statistics (the Data Collector re-learns within an
epoch), MDS busy/queue counters, fault injector totals, and migration log
entries.  Those are observability aggregates, not simulation state — a
resumed run remains a valid continuation, it just reports them per segment.

Capture requires a *quiescent point*: the DES calendar must be empty, which
is exactly the state :meth:`OrigamiFS.run` leaves behind.  Capturing a live
cluster mid-event raises :class:`CheckpointError`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.durability.errors import CheckpointError

__all__ = ["SimCheckpoint", "Checkpointer", "CHECKPOINT_SCHEMA_VERSION"]

#: bump when the checkpoint payload changes incompatibly
CHECKPOINT_SCHEMA_VERSION = 1

#: OrigamiFS counters snapshotted/restored verbatim
_COUNTER_FIELDS = (
    "ops_completed",
    "failed_ops",
    "vanished_ops",
    "fault_failed_ops",
    "total_rpcs",
    "stale_decisions",
    "data_ops_completed",
    "last_completion_ms",
)


def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


# --------------------------------------------------------------------- tree
def _tree_state(tree) -> Dict[str, Any]:
    """Exact snapshot of a NamespaceTree's internal arrays.

    The numpy columns are sliced to the logical extent and converted to
    plain Python scalars so the JSON payload is portable.
    """
    n = tree.capacity
    return {
        "parent": tree._parent[:n].tolist(),
        "name": list(tree._name),
        "ftype": tree._ftype[:n].tolist(),
        "depth": tree._depth[:n].tolist(),
        "alive": tree._alive[:n].tolist(),
        "size": tree._size[:n].tolist(),
        "children": [
            None if kids is None else dict(kids) for kids in tree._children
        ],
        "n_child_files": tree._n_child_files[:n].tolist(),
        "n_child_dirs": tree._n_child_dirs[:n].tolist(),
        "num_dirs": tree._num_dirs,
        "num_files": tree._num_files,
        "version": tree.version,
    }


def _rebuild_tree(state: Dict[str, Any]):
    """Reconstruct a NamespaceTree with identical ino numbering."""
    import numpy as np

    from repro.namespace.tree import NamespaceTree

    tree = NamespaceTree()
    try:
        n = len(state["parent"])
        tree._parent = np.asarray([int(p) for p in state["parent"]], dtype=np.int64)
        tree._name = [str(x) for x in state["name"]]
        tree._ftype = np.asarray([int(t) for t in state["ftype"]], dtype=np.int8)
        tree._depth = np.asarray([int(d) for d in state["depth"]], dtype=np.int64)
        tree._alive = np.asarray([bool(a) for a in state["alive"]], dtype=bool)
        tree._size = np.asarray([int(s) for s in state["size"]], dtype=np.int64)
        tree._children = [
            None if kids is None else {str(k): int(v) for k, v in kids.items()}
            for kids in state["children"]
        ]
        tree._n_child_files = np.asarray(
            [int(c) for c in state["n_child_files"]], dtype=np.int64
        )
        tree._n_child_dirs = np.asarray(
            [int(c) for c in state["n_child_dirs"]], dtype=np.int64
        )
        tree._n = n
        tree._cap = n
        tree._num_dirs = int(state["num_dirs"])
        tree._num_files = int(state["num_files"])
        tree.version = int(state["version"])
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise CheckpointError(f"malformed tree state: {exc}") from None
    tree._dfs_cache = None
    try:
        tree.validate()
    except AssertionError as exc:
        raise CheckpointError(f"restored tree failed validation: {exc}") from None
    return tree


# --------------------------------------------------------------- checkpoint
@dataclass
class SimCheckpoint:
    """A quiescent-point snapshot of an :class:`OrigamiFS` run."""

    strategy: str
    seed: int
    n_mds: int
    use_kvstore: bool
    durable: bool
    data_dir: Optional[str]
    now_ms: float
    cursor: int
    counters: Dict[str, Any]
    created_files: List[int]
    owners: List[int]
    tree: Dict[str, Any]
    rng_streams: Dict[str, Any]
    fault_rng: Dict[str, Any]
    latency: Dict[str, Any]
    cache: Dict[str, Any]
    epochs: List[Dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "n_mds": self.n_mds,
            "use_kvstore": self.use_kvstore,
            "durable": self.durable,
            "data_dir": self.data_dir,
            "now_ms": self.now_ms,
            "cursor": self.cursor,
            "counters": self.counters,
            "created_files": self.created_files,
            "owners": self.owners,
            "tree": self.tree,
            "rng_streams": self.rng_streams,
            "fault_rng": self.fault_rng,
            "latency": self.latency,
            "cache": self.cache,
            "epochs": self.epochs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimCheckpoint":
        try:
            return cls(
                strategy=str(payload["strategy"]),
                seed=int(payload["seed"]),
                n_mds=int(payload["n_mds"]),
                use_kvstore=bool(payload["use_kvstore"]),
                durable=bool(payload["durable"]),
                data_dir=payload["data_dir"],
                now_ms=float(payload["now_ms"]),
                cursor=int(payload["cursor"]),
                counters=dict(payload["counters"]),
                created_files=[int(i) for i in payload["created_files"]],
                owners=[int(o) for o in payload["owners"]],
                tree=payload["tree"],
                rng_streams=dict(payload["rng_streams"]),
                fault_rng=dict(payload["fault_rng"]),
                latency=dict(payload["latency"]),
                cache=dict(payload["cache"]),
                epochs=list(payload["epochs"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint payload: {exc}") from None

    def save(self, path: str) -> None:
        """Atomically write the checkpoint as CRC-framed JSON."""
        payload = self.to_dict()
        frame = {
            "v": CHECKPOINT_SCHEMA_VERSION,
            "crc": zlib.crc32(_canonical(payload)),
            "checkpoint": payload,
        }
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(frame, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "SimCheckpoint":
        try:
            with open(path) as f:
                frame = json.load(f)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}") from None
        if not isinstance(frame, dict) or "checkpoint" not in frame:
            raise CheckpointError(f"checkpoint {path} has no payload")
        version = frame.get("v")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has schema v{version}, "
                f"expected v{CHECKPOINT_SCHEMA_VERSION}"
            )
        payload = frame["checkpoint"]
        if zlib.crc32(_canonical(payload)) != frame.get("crc"):
            raise CheckpointError(f"checkpoint {path} failed its CRC check")
        return cls.from_dict(payload)

    # ---------------------------------------------- hooks used by OrigamiFS
    # These run inside OrigamiFS.__init__ via the ``restore_from`` kwarg so
    # ordering constraints (owners before store population, clock warp
    # before the fault injector schedules its timeline) hold by construction.
    def apply_partition(self, fs) -> None:
        """Overwrite the freshly built partition map with the captured one."""
        owners = np.asarray(self.owners, dtype=np.int64)
        if owners.shape[0] != fs.tree.capacity:
            raise CheckpointError(
                "owner array does not match the restored tree capacity"
            )
        fs.pmap.assign_bulk(owners)

    def apply_runtime(self, fs) -> None:
        """Restore counters, RNG streams, latency/cache state, and the clock."""
        from repro.fs.metrics import EpochMetrics

        fs.cursor = self.cursor
        fs.replay_done = fs.cursor >= len(fs.trace)
        for name in _COUNTER_FIELDS:
            if name in self.counters:
                setattr(fs, name, self.counters[name])
        fs.created_files = list(self.created_files)
        fs.epochs = [
            EpochMetrics(
                epoch=int(e["epoch"]),
                duration_ms=float(e["duration_ms"]),
                busy_ms=np.asarray(e["busy_ms"], dtype=np.float64),
                qps=np.asarray(e["qps"], dtype=np.float64),
                rpcs=np.asarray(e["rpcs"], dtype=np.float64),
                inodes=np.asarray(e["inodes"], dtype=np.float64),
                migrations=int(e.get("migrations", 0)),
            )
            for e in self.epochs
        ]

        for name, state in self.rng_streams.items():
            try:
                fs._ssf.stream(name).generator.bit_generator.state = state
            except (TypeError, ValueError, KeyError) as exc:
                raise CheckpointError(
                    f"cannot restore RNG stream {name!r}: {exc}"
                ) from None

        lat = self.latency
        rec = fs.latency
        try:
            samples = np.asarray(lat["reservoir"], dtype=np.float64)
            n = min(samples.shape[0], rec._cap)
            rec._res[:n] = samples[:n]
            rec.count = int(lat["count"])
            rec.total = float(lat["total"])
            rec._rng.bit_generator.state = lat["rng"]
            # absent in pre-block checkpoints: block draws are element-wise
            # identical to scalar draws, so resuming with an empty queue from
            # a scalar-era RNG state reproduces the same slot sequence
            rec._slots = [int(s) for s in lat.get("pending_slots", [])]
            rec._slot_i = 0
        except (TypeError, ValueError, KeyError) as exc:
            raise CheckpointError(f"cannot restore latency recorder: {exc}") from None

        cache = fs.cache
        cache.hits = int(self.cache.get("hits", 0))
        cache.misses = int(self.cache.get("misses", 0))
        if hasattr(cache, "invalid_until"):
            cache.invalid_until = float(self.cache.get("invalid_until", 0.0))
        if hasattr(cache, "_expiry"):
            cache._expiry = {
                int(k): float(v) for k, v in self.cache.get("expiry", {}).items()
            }
            cache.grants = int(self.cache.get("grants", 0))
            cache.recalls = int(self.cache.get("recalls", 0))

        fs.env.warp(self.now_ms)

    def apply_fault_rng(self, fs) -> None:
        """Restore the injector's private streams (runs after it is built)."""
        if fs.faults is None or not self.fault_rng:
            return
        try:
            if "drop" in self.fault_rng:
                fs.faults._drop_rng.generator.bit_generator.state = self.fault_rng["drop"]
            if "retry" in self.fault_rng:
                fs.faults._retry_rng.generator.bit_generator.state = self.fault_rng["retry"]
        except (TypeError, ValueError, KeyError) as exc:
            raise CheckpointError(f"cannot restore fault RNG streams: {exc}") from None


# -------------------------------------------------------------- checkpointer
class Checkpointer:
    """Capture a quiescent :class:`OrigamiFS` and warm-restart it later.

    The segmented-run protocol::

        fs1 = OrigamiFS(tree, trace[:n], policy, config)
        fs1.run()                                   # calendar drains
        ckpt = Checkpointer().capture(fs1)
        ckpt.save("run.ckpt")

        ckpt = SimCheckpoint.load("run.ckpt")
        fs2 = Checkpointer().restore(ckpt, trace, policy, config)
        result = fs2.run()                          # replays trace[n:]

    ``restore`` rebuilds the namespace tree from the checkpoint (callers do
    not pass one), so the trace argument must be the *full* trace the
    captured run was a prefix of.
    """

    def capture(self, fs) -> SimCheckpoint:
        env = fs.env
        if env.queue_len != 0:
            raise CheckpointError(
                f"checkpoint requires a quiescent simulation "
                f"({env.queue_len} events still on the calendar)"
            )
        if fs.config.data_dir is not None:
            # make the on-disk copy current: a mid-life capture may hold
            # unsynced WAL appends (run() already closed the stores, in
            # which case there is nothing to do)
            for s in fs.servers:
                backend = s.store.backend if s.store is not None else None
                if backend is not None and not backend.closed:
                    s.store.sync()

        rec = fs.latency
        latency = {
            "count": rec.count,
            "total": rec.total,
            "reservoir": rec._res[: min(rec.count, rec._cap)].tolist(),
            "rng": rec._rng.bit_generator.state,
            # the recorder pre-draws replacement slots in blocks, so the RNG
            # stream runs ahead of consumption; the unconsumed tail must ride
            # along or a restored run would skip those draws
            "pending_slots": [int(s) for s in rec._slots[rec._slot_i :]],
        }
        cache_state: Dict[str, Any] = {
            "hits": fs.cache.hits,
            "misses": fs.cache.misses,
        }
        if hasattr(fs.cache, "invalid_until"):
            cache_state["invalid_until"] = fs.cache.invalid_until
        if hasattr(fs.cache, "_expiry"):
            cache_state["expiry"] = {str(k): v for k, v in fs.cache._expiry.items()}
            cache_state["grants"] = fs.cache.grants
            cache_state["recalls"] = fs.cache.recalls
        fault_rng: Dict[str, Any] = {}
        if fs.faults is not None:
            fault_rng = {
                "drop": fs.faults._drop_rng.generator.bit_generator.state,
                "retry": fs.faults._retry_rng.generator.bit_generator.state,
            }

        return SimCheckpoint(
            strategy=fs.policy.name,
            seed=fs.config.seed,
            n_mds=fs.config.n_mds,
            use_kvstore=fs.use_kvstore,
            durable=fs.config.data_dir is not None,
            data_dir=fs.config.data_dir,
            now_ms=env.now,
            cursor=fs.cursor,
            counters={name: getattr(fs, name) for name in _COUNTER_FIELDS},
            created_files=list(fs.created_files),
            owners=[int(o) for o in fs.pmap.owner_array()],
            tree=_tree_state(fs.tree),
            rng_streams={
                name: stream.generator.bit_generator.state
                for name, stream in fs._ssf._cache.items()
            },
            fault_rng=fault_rng,
            latency=latency,
            cache=cache_state,
            epochs=[e.to_dict() for e in fs.epochs],
        )

    def restore(self, checkpoint: SimCheckpoint, trace, policy, config=None):
        """Build a warm OrigamiFS continuing the captured run over ``trace``."""
        from repro.fs.filesystem import OrigamiFS, SimConfig

        if config is None:
            config = SimConfig(
                n_mds=checkpoint.n_mds,
                seed=checkpoint.seed,
                use_kvstore=checkpoint.use_kvstore,
                data_dir=checkpoint.data_dir,
            )
        if policy.name != checkpoint.strategy:
            raise CheckpointError(
                f"checkpoint was captured under strategy {checkpoint.strategy!r}, "
                f"cannot resume under {policy.name!r}"
            )
        if config.seed != checkpoint.seed:
            raise CheckpointError(
                f"checkpoint seed {checkpoint.seed} != config seed {config.seed}: "
                f"restored RNG streams would not mean what they meant"
            )
        if config.n_mds != checkpoint.n_mds:
            raise CheckpointError(
                f"checkpoint has {checkpoint.n_mds} MDSs, config has {config.n_mds}"
            )
        if checkpoint.durable and config.data_dir is None:
            raise CheckpointError(
                "checkpoint references durable stores; set SimConfig.data_dir "
                "to the captured data directory"
            )
        if not checkpoint.durable and config.data_dir is not None:
            raise CheckpointError(
                "checkpoint captured in-memory stores; unset SimConfig.data_dir"
            )
        if len(trace) < checkpoint.cursor:
            raise CheckpointError(
                f"trace has {len(trace)} ops but the checkpoint already "
                f"replayed {checkpoint.cursor}: pass the full original trace"
            )
        tree = _rebuild_tree(checkpoint.tree)
        return OrigamiFS(tree, trace, policy, config, restore_from=checkpoint)
