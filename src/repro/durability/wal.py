"""Segmented, CRC32-checksummed write-ahead log with group commit.

Layout: ``<data_dir>/wal/wal-<seq:06d>.log``.  Each segment opens with a
16-byte header (magic, format version, first LSN) followed by framed
records::

    [crc32: u32][length: u32][payload: length bytes]
    payload = [type: u8][klen: u32][key][vlen: u32][value]

The CRC covers the length field and the payload, so a torn or bit-flipped
length cannot send the reader off the rails.  LSNs are assigned densely in
append order; a segment's records are numbered from its header's first LSN,
which is what lets :func:`replay_wal` detect gaps between segments.

Group commit: ``append`` buffers encoded records in memory and only
``sync()`` writes them out and fsyncs — one device flush amortised over the
batch.  ``durable_lsn`` is the acknowledged-LSN watermark: exactly the
records a crash is guaranteed to preserve.  A simulated ``crash()`` drops
the unsynced buffer, which is precisely what a process crash does to
records that were appended but never fsynced.

Recovery policy (the acked-prefix invariant): a validation failure in the
**final** segment is treated as the torn tail of an interrupted append —
replay stops cleanly at the last valid record, surfacing no partial record.
The same failure in a **sealed** segment raises
:class:`~repro.durability.errors.WalCorruptionError`, because sealed
segments were fully synced and damage there is genuine corruption.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, NamedTuple, Optional, Tuple

from repro.durability.errors import WalCorruptionError

__all__ = [
    "REC_PUT",
    "REC_DELETE",
    "WalRecord",
    "WalWriter",
    "WalReplay",
    "replay_wal",
    "scan_segments",
    "encode_record",
]

WAL_MAGIC = b"OWAL"
WAL_FORMAT_VERSION = 1

_SEG_HEADER = struct.Struct("<4sIQ")  # magic, version, first_lsn
_REC_HEADER = struct.Struct("<II")  # crc32, payload length
_SEG_NAME = re.compile(r"^wal-(\d{6})\.log$")

#: payload type tags
REC_PUT = 1
REC_DELETE = 2

#: refuse absurd record lengths outright (corrupt length fields would
#: otherwise make the reader allocate gigabytes before the CRC check)
_MAX_RECORD_BYTES = 64 * 1024 * 1024


class WalRecord(NamedTuple):
    """One decoded log record."""

    lsn: int
    rec_type: int
    key: bytes
    value: bytes


def encode_record(rec_type: int, key: bytes, value: bytes) -> bytes:
    """Frame one record (header + payload) ready for appending."""
    payload = struct.pack("<BI", rec_type, len(key)) + key + struct.pack("<I", len(value)) + value
    body = struct.pack("<I", len(payload)) + payload
    return struct.pack("<I", zlib.crc32(body)) + body


def _decode_payload(payload: bytes) -> Tuple[int, bytes, bytes]:
    """Parse a CRC-validated payload; raises ValueError on malformed layout."""
    if len(payload) < 5:
        raise ValueError("payload shorter than its fixed fields")
    rec_type, klen = struct.unpack_from("<BI", payload, 0)
    off = 5
    if off + klen + 4 > len(payload):
        raise ValueError("key length exceeds payload")
    key = payload[off : off + klen]
    off += klen
    (vlen,) = struct.unpack_from("<I", payload, off)
    off += 4
    if off + vlen != len(payload):
        raise ValueError("value length does not close the payload")
    return rec_type, key, payload[off : off + vlen]


@dataclass
class _Segment:
    seq: int
    path: str
    first_lsn: int


@dataclass
class WalReplay:
    """What one :func:`replay_wal` pass saw (feeds the recovery cost model)."""

    records: List[WalRecord] = field(default_factory=list)
    segments_scanned: int = 0
    bytes_scanned: int = 0
    #: highest LSN of a valid record seen (0 when the log is empty)
    last_lsn: int = 0
    #: highest segment sequence number present (0 when the log is empty)
    last_seq: int = 0
    #: True when the final segment ended in a torn/invalid record
    torn_tail: bool = False
    #: byte offset in the final segment up to which records were valid —
    #: recovery truncates the file here so the torn bytes never end up
    #: inside a sealed segment (where they would read as real corruption)
    final_valid_bytes: int = 0
    #: path of the final segment (None when the log is empty)
    final_path: Optional[str] = None


def scan_segments(wal_dir: str) -> List[_Segment]:
    """WAL segments in ``wal_dir``, sorted by sequence number."""
    if not os.path.isdir(wal_dir):
        return []
    segs = []
    for name in os.listdir(wal_dir):
        m = _SEG_NAME.match(name)
        if m:
            segs.append(_Segment(int(m.group(1)), os.path.join(wal_dir, name), 0))
    segs.sort(key=lambda s: s.seq)
    return segs


def replay_wal(wal_dir: str, start_lsn: int = 0) -> WalReplay:
    """Decode every record with ``lsn > start_lsn``, tolerating a torn tail.

    Raises :class:`WalCorruptionError` for damage in sealed segments or an
    LSN gap between segments; any other malformation is confined to the
    final segment and reported via ``torn_tail``.
    """
    out = WalReplay()
    segs = scan_segments(wal_dir)
    if not segs:
        return out
    expected_lsn: Optional[int] = None
    final_seq = segs[-1].seq
    for seg in segs:
        is_final = seg.seq == final_seq
        with open(seg.path, "rb") as f:
            data = f.read()
        out.segments_scanned += 1
        out.bytes_scanned += len(data)
        out.last_seq = seg.seq
        if is_final:
            out.final_path = seg.path
            out.final_valid_bytes = 0

        def bad(msg: str) -> bool:
            """Handle an invalid region: tolerate in the final segment only."""
            if is_final:
                out.torn_tail = True
                return True
            raise WalCorruptionError(f"{seg.path}: {msg}")

        if len(data) < _SEG_HEADER.size:
            if bad("truncated segment header"):
                continue
        magic, version, first_lsn = _SEG_HEADER.unpack_from(data, 0)
        if magic != WAL_MAGIC:
            if bad(f"bad magic {magic!r}"):
                continue
        if version != WAL_FORMAT_VERSION:
            raise WalCorruptionError(f"{seg.path}: unsupported WAL version {version}")
        if expected_lsn is not None and first_lsn != expected_lsn:
            raise WalCorruptionError(
                f"{seg.path}: first LSN {first_lsn} leaves a gap (expected {expected_lsn})"
            )
        if expected_lsn is None and first_lsn > start_lsn + 1:
            # truncate_upto only retires segments fully covered by the
            # checkpoint, so the first surviving segment must reach back to
            # start_lsn + 1; starting later means a segment was lost
            raise WalCorruptionError(
                f"{seg.path}: first LSN {first_lsn} implies records "
                f"{start_lsn + 1}..{first_lsn - 1} are missing"
            )
        lsn = first_lsn
        off = _SEG_HEADER.size
        n = len(data)
        if is_final:
            out.final_valid_bytes = _SEG_HEADER.size
        while off < n:
            if off + _REC_HEADER.size > n:
                bad("torn record header")
                break
            crc, length = _REC_HEADER.unpack_from(data, off)
            if length > _MAX_RECORD_BYTES:
                bad(f"implausible record length {length}")
                break
            end = off + _REC_HEADER.size + length
            if end > n:
                bad("torn record body")
                break
            body = data[off + 4 : end]  # length field + payload (CRC coverage)
            if zlib.crc32(body) != crc:
                bad("record CRC mismatch")
                break
            try:
                rec_type, key, value = _decode_payload(data[off + _REC_HEADER.size : end])
            except ValueError as exc:
                bad(f"malformed payload ({exc})")
                break
            if rec_type not in (REC_PUT, REC_DELETE):
                bad(f"unknown record type {rec_type}")
                break
            if lsn > start_lsn:
                out.records.append(WalRecord(lsn, rec_type, key, value))
            out.last_lsn = lsn
            lsn += 1
            off = end
            if is_final:
                out.final_valid_bytes = off
        else:
            expected_lsn = lsn
            continue
        # inner loop broke on a torn tail: later records are unreachable
        expected_lsn = lsn
        if out.torn_tail:
            break
    return out


class WalWriter:
    """Appender with group commit and an explicit acked-LSN watermark.

    ``stats`` may be any object exposing ``wal_appends`` / ``wal_bytes`` /
    ``fsyncs`` integer attributes (the store's
    :class:`~repro.kvstore.lsm.StoreStats`); counters are bumped in place.
    ``sync_listener`` is called with each group-commit batch size, feeding
    the ``wal_group_commit_size`` histogram when observability is on.
    """

    def __init__(
        self,
        wal_dir: str,
        segment_bytes: int = 1 << 20,
        group_commit_records: int = 32,
        use_fsync: bool = True,
        start_lsn: int = 1,
        start_seq: int = 1,
        stats=None,
        sync_listener: Optional[Callable[[int], None]] = None,
    ):
        if segment_bytes < _SEG_HEADER.size + _REC_HEADER.size:
            raise ValueError("segment_bytes is too small to hold a record")
        if group_commit_records < 1:
            raise ValueError("group_commit_records must be >= 1")
        self.wal_dir = wal_dir
        self.segment_bytes = segment_bytes
        self.group_commit_records = group_commit_records
        self.use_fsync = use_fsync
        self.stats = stats
        self.sync_listener = sync_listener
        os.makedirs(wal_dir, exist_ok=True)
        self.next_lsn = int(start_lsn)
        self.durable_lsn = int(start_lsn) - 1
        self._next_seq = int(start_seq)
        self._fh = None
        self._seg_size = 0
        self._batch: List[bytes] = []
        self._batch_records = 0
        self._closed = False

    # ------------------------------------------------------------- plumbing
    def _open_segment(self) -> None:
        path = os.path.join(self.wal_dir, f"wal-{self._next_seq:06d}.log")
        self._fh = open(path, "wb")
        header = _SEG_HEADER.pack(WAL_MAGIC, WAL_FORMAT_VERSION, self.next_lsn - self._batch_records)
        self._fh.write(header)
        self._seg_size = len(header)
        self._next_seq += 1

    @property
    def last_appended_lsn(self) -> int:
        return self.next_lsn - 1

    @property
    def pending_records(self) -> int:
        return self._batch_records

    # --------------------------------------------------------------- append
    def append(self, rec_type: int, key: bytes, value: bytes = b"") -> int:
        """Buffer one record; returns its LSN.  Durable only after sync()."""
        if self._closed:
            raise RuntimeError("WAL is closed")
        framed = encode_record(rec_type, key, value)
        lsn = self.next_lsn
        self.next_lsn += 1
        self._batch.append(framed)
        self._batch_records += 1
        if self.stats is not None:
            self.stats.wal_appends += 1
            self.stats.wal_bytes += len(framed)
        if self._batch_records >= self.group_commit_records:
            self.sync()
        return lsn

    @property
    def closed(self) -> bool:
        return self._closed

    def sync(self) -> int:
        """Group-commit the buffered batch; returns records made durable."""
        if self._closed:
            raise RuntimeError("WAL is closed")
        n = self._batch_records
        if n == 0:
            return 0
        if self._fh is None:
            self._open_segment()
        self._fh.write(b"".join(self._batch))
        self._fh.flush()
        if self.use_fsync:
            os.fsync(self._fh.fileno())
        if self.stats is not None:
            self.stats.fsyncs += 1
        self._seg_size += sum(len(b) for b in self._batch)
        self._batch = []
        self._batch_records = 0
        self.durable_lsn = self.next_lsn - 1
        if self.sync_listener is not None:
            self.sync_listener(n)
        if self._seg_size >= self.segment_bytes:
            self._fh.close()
            self._fh = None  # sealed; next sync opens a fresh segment
        return n

    # ------------------------------------------------------------ lifecycle
    def truncate_upto(self, lsn: int) -> int:
        """Delete whole segments whose records are all ``<= lsn`` (obsolete
        after a memtable flush checkpointed them into SSTables).  The active
        (highest-seq) segment is never deleted.  Returns segments removed."""
        segs = scan_segments(self.wal_dir)
        if len(segs) <= 1:
            return 0
        removed = 0
        # a sealed segment is obsolete iff the *next* segment starts at or
        # below lsn+1 (i.e. every record in it has lsn <= lsn)
        firsts = []
        for seg in segs:
            with open(seg.path, "rb") as f:
                head = f.read(_SEG_HEADER.size)
            if len(head) < _SEG_HEADER.size:
                firsts.append(None)
            else:
                firsts.append(_SEG_HEADER.unpack(head)[2])
        for i in range(len(segs) - 1):
            nxt = firsts[i + 1]
            if nxt is None or nxt > lsn + 1:
                break
            os.unlink(segs[i].path)
            removed += 1
        return removed

    def crash(self) -> None:
        """Simulate a process crash: the unsynced batch is lost."""
        self._batch = []
        self._batch_records = 0
        self.next_lsn = self.durable_lsn + 1
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    def close(self) -> None:
        """Clean shutdown: sync the tail, then release the file handle."""
        if self._closed:
            return
        self.sync()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True
