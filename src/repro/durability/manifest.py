"""MANIFEST: a versioned, checksummed edit log of the store's live tables.

The MANIFEST answers "which SSTable files are live, at which level, inside
which guard, in which recency order" plus "from which LSN must the WAL be
replayed".  It is an append-only JSONL file where every line wraps one edit
with its CRC32::

    {"c": <crc32 of canonical edit JSON>, "e": {...edit...}}

Edit kinds:

* ``header``     — schema version marker (first line);
* ``guards``     — guard boundaries installed at a level;
* ``add``        — an SSTable became live (level, guard, file number, bytes);
* ``remove``     — an SSTable was superseded by compaction;
* ``checkpoint`` — memtable state up to ``wal_lsn`` is now in SSTables, so
  WAL replay may start after it.

Replaying the edits in order rebuilds the exact level/guard/run structure
including recency (a later ``add`` into the same guard is a newer run).  On
open the log is replayed, then atomically rewritten as a compacted snapshot
(temp file + ``os.replace``) so it cannot grow without bound.

Torn-tail tolerance mirrors the WAL: a malformed **last** line is the
expected residue of a crash mid-append and is dropped (the edit was never
acknowledged — the flush ordering writes SSTable files *before* their
manifest edit, so dropping it merely leaves an orphan file the recovery
ignores).  A malformed line anywhere else raises
:class:`~repro.durability.errors.ManifestError`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.errors import ManifestError

__all__ = ["MANIFEST_SCHEMA_VERSION", "VersionState", "Manifest"]

MANIFEST_SCHEMA_VERSION = 1
MANIFEST_NAME = "MANIFEST"

#: (level, guard-lo) — guard-lo is None for level 0
TableKey = Tuple[int, Optional[bytes]]


def _canonical(edit: Dict[str, Any]) -> str:
    return json.dumps(edit, sort_keys=True, separators=(",", ":"))


def _frame(edit: Dict[str, Any]) -> str:
    body = _canonical(edit)
    return json.dumps({"c": zlib.crc32(body.encode("utf-8")), "e": edit}, sort_keys=True,
                      separators=(",", ":"))


def _guard_repr(guard: Optional[bytes]) -> Optional[str]:
    return None if guard is None else guard.hex()


def _guard_parse(raw: Optional[str]) -> Optional[bytes]:
    return None if raw is None else bytes.fromhex(raw)


@dataclass
class VersionState:
    """The live-table view a replayed MANIFEST resolves to."""

    #: file numbers per (level, guard), newest first
    tables: Dict[TableKey, List[int]] = field(default_factory=dict)
    #: guard lo-keys per level (>= 1), sorted
    guards: Dict[int, List[bytes]] = field(default_factory=dict)
    #: WAL replay starts strictly after this LSN
    wal_checkpoint_lsn: int = 0
    #: recorded byte size per live file (cost model input)
    table_bytes: Dict[int, int] = field(default_factory=dict)
    #: edits replayed to reach this state
    edits_applied: int = 0

    @property
    def next_file_number(self) -> int:
        live = [f for files in self.tables.values() for f in files]
        return max(live, default=0) + 1

    def live_files(self) -> List[int]:
        return sorted(f for files in self.tables.values() for f in files)

    def apply(self, edit: Dict[str, Any], where: str) -> None:
        kind = edit.get("type")
        try:
            if kind == "header":
                version = int(edit["version"])
                if version > MANIFEST_SCHEMA_VERSION:
                    raise ManifestError(
                        f"{where}: manifest version {version} is newer than supported"
                    )
            elif kind == "guards":
                self.guards[int(edit["level"])] = [bytes.fromhex(h) for h in edit["los"]]
            elif kind == "add":
                key = (int(edit["level"]), _guard_parse(edit.get("guard")))
                self.tables.setdefault(key, []).insert(0, int(edit["file"]))
                self.table_bytes[int(edit["file"])] = int(edit.get("bytes", 0))
            elif kind == "remove":
                key = (int(edit["level"]), _guard_parse(edit.get("guard")))
                files = self.tables.get(key, [])
                try:
                    files.remove(int(edit["file"]))
                except ValueError:
                    raise ManifestError(
                        f"{where}: remove of file {edit['file']} not live at {key}"
                    ) from None
                if not files:
                    self.tables.pop(key, None)
                self.table_bytes.pop(int(edit["file"]), None)
            elif kind == "checkpoint":
                self.wal_checkpoint_lsn = max(self.wal_checkpoint_lsn, int(edit["wal_lsn"]))
            else:
                raise ManifestError(f"{where}: unknown edit type {kind!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"{where}: malformed {kind!r} edit ({exc})") from None
        self.edits_applied += 1

    def snapshot_edits(self) -> List[Dict[str, Any]]:
        """Edits that, replayed in order, reproduce this state exactly."""
        edits: List[Dict[str, Any]] = [{"type": "header", "version": MANIFEST_SCHEMA_VERSION}]
        for level in sorted(self.guards):
            edits.append(
                {"type": "guards", "level": level, "los": [lo.hex() for lo in self.guards[level]]}
            )
        for (level, guard), files in sorted(
            self.tables.items(), key=lambda kv: (kv[0][0], kv[0][1] or b"")
        ):
            # emit oldest first: replay inserts each add at the front,
            # reconstructing the newest-first run order
            for f in reversed(files):
                edits.append(
                    {
                        "type": "add",
                        "level": level,
                        "guard": _guard_repr(guard),
                        "file": f,
                        "bytes": self.table_bytes.get(f, 0),
                    }
                )
        if self.wal_checkpoint_lsn:
            edits.append({"type": "checkpoint", "wal_lsn": self.wal_checkpoint_lsn})
        return edits


def _replay_lines(path: str) -> VersionState:
    state = VersionState()
    # binary read: a bit-flipped byte may not even be valid UTF-8, and that
    # must surface as a ManifestError on its line, not a UnicodeDecodeError
    with open(path, "rb") as f:
        raw = f.read()
    lines = raw.split(b"\n")
    # drop the empty trailer a well-formed file ends with
    if lines and lines[-1] == b"":
        lines.pop()
    last = len(lines) - 1
    for i, line in enumerate(lines):
        where = f"{path}:{i + 1}"
        try:
            framed = json.loads(line.decode("utf-8"))
            crc = framed["c"]
            edit = framed["e"]
            if zlib.crc32(_canonical(edit).encode("utf-8")) != crc:
                raise ValueError("edit CRC mismatch")
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, ValueError) as exc:
            if i == last:
                break  # torn tail of an interrupted append: the edit never acked
            raise ManifestError(f"{where}: {exc}") from None
        state.apply(edit, where)
    return state


class Manifest:
    """Writer handle over the store's MANIFEST file."""

    def __init__(self, dir_path: str, state: VersionState, use_fsync: bool = True):
        self.path = os.path.join(dir_path, MANIFEST_NAME)
        self.state = state
        self.use_fsync = use_fsync
        self._pending: List[Dict[str, Any]] = []
        self._fh = None

    # --------------------------------------------------------------- opening
    @classmethod
    def open(cls, dir_path: str, use_fsync: bool = True) -> "Manifest":
        """Replay (or create) the MANIFEST and rewrite it compacted."""
        path = os.path.join(dir_path, MANIFEST_NAME)
        state = _replay_lines(path) if os.path.exists(path) else VersionState()
        m = cls(dir_path, state, use_fsync=use_fsync)
        m._rewrite()
        return m

    @classmethod
    def exists(cls, dir_path: str) -> bool:
        return os.path.exists(os.path.join(dir_path, MANIFEST_NAME))

    def _rewrite(self) -> None:
        """Atomically replace the log with a compacted snapshot of state."""
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            for edit in self.state.snapshot_edits():
                f.write(_frame(edit))
                f.write("\n")
            f.flush()
            if self.use_fsync:
                os.fsync(f.fileno())
        os.replace(tmp, self.path)
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # --------------------------------------------------------------- editing
    def log(self, edit: Dict[str, Any]) -> None:
        """Apply an edit to the in-memory state and queue it for commit."""
        self.state.apply(edit, "<pending>")
        self.state.edits_applied -= 1  # pending edits count on commit
        self._pending.append(edit)

    def log_add(self, level: int, guard: Optional[bytes], file: int, nbytes: int) -> None:
        self.log({"type": "add", "level": level, "guard": _guard_repr(guard),
                  "file": file, "bytes": nbytes})

    def log_remove(self, level: int, guard: Optional[bytes], file: int) -> None:
        self.log({"type": "remove", "level": level, "guard": _guard_repr(guard), "file": file})

    def log_guards(self, level: int, los: List[bytes]) -> None:
        self.log({"type": "guards", "level": level, "los": [lo.hex() for lo in los]})

    def log_checkpoint(self, wal_lsn: int) -> None:
        self.log({"type": "checkpoint", "wal_lsn": wal_lsn})

    def commit(self) -> int:
        """Append + fsync the pending edits; returns edits written."""
        if not self._pending:
            return 0
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        for edit in self._pending:
            self._fh.write(_frame(edit))
            self._fh.write("\n")
        self._fh.flush()
        if self.use_fsync:
            os.fsync(self._fh.fileno())
        n = len(self._pending)
        self.state.edits_applied += n
        self._pending = []
        return n

    def crash(self) -> None:
        """Simulate a crash: pending (unacked) edits vanish."""
        self._pending = []
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def close(self) -> None:
        self.commit()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
