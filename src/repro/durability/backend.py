"""Durable backend: the persistence hooks an :class:`LSMStore` calls into.

The store itself stays oblivious to file formats.  When a ``DurableBackend``
is attached (``store.backend``), the write path logs every mutation to the
WAL before applying it, and the flush/compaction path mirrors every
structural change — a run created, a run superseded, guards installed — into
the MANIFEST.  With ``backend is None`` the store behaves exactly as the
in-memory seed did (golden-parity requirement).

Crash-consistency ordering, enforced here:

1. ``persist_run`` writes + fsyncs the SSTable file *first*;
2. ``commit`` appends + fsyncs the MANIFEST edits referencing it;
3. only then is the WAL truncated and superseded SSTable files unlinked.

A crash between (1) and (2) leaves an orphan ``.sst`` file that recovery
ignores; a crash between (2) and (3) leaves a stale WAL tail whose replay is
idempotent (replayed puts re-shadow what the tables already hold).  At no
point can the MANIFEST reference bytes that are not durable.

Directory layout under ``data_dir``::

    MANIFEST          edit log (see durability.manifest)
    wal/wal-*.log     WAL segments (see durability.wal)
    sst/<n>.sst       persisted runs (see durability.sstable_io)
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.durability.manifest import Manifest
from repro.durability.sstable_io import sstable_path, write_sstable
from repro.durability.wal import REC_DELETE, REC_PUT, WalWriter

__all__ = ["DurabilityOptions", "DurableBackend"]


@dataclass(frozen=True)
class DurabilityOptions:
    """Tunables for the on-disk format (not the latency model — that lives
    in :class:`repro.sim.durcost.DurabilityCostModel`)."""

    segment_bytes: int = 1 << 20
    group_commit_records: int = 32
    #: disable to speed up tests that do not crash mid-write
    use_fsync: bool = True


class DurableBackend:
    """WAL + MANIFEST + SSTable files behind one LSMStore."""

    def __init__(
        self,
        data_dir: str,
        manifest: Manifest,
        wal: WalWriter,
        options: DurabilityOptions,
    ):
        self.data_dir = data_dir
        self.manifest = manifest
        self.wal = wal
        self.options = options
        self.sst_dir = os.path.join(data_dir, "sst")
        os.makedirs(self.sst_dir, exist_ok=True)
        self._next_file = manifest.state.next_file_number
        self._pending_deletes: List[int] = []
        self._closed = False

    # ----------------------------------------------------------- construction
    @classmethod
    def create(
        cls,
        data_dir: str,
        options: Optional[DurabilityOptions] = None,
        stats=None,
        sync_listener: Optional[Callable[[int], None]] = None,
    ) -> "DurableBackend":
        """Initialise a fresh data directory (no prior state expected)."""
        options = options or DurabilityOptions()
        os.makedirs(data_dir, exist_ok=True)
        manifest = Manifest.open(data_dir, use_fsync=options.use_fsync)
        wal = WalWriter(
            os.path.join(data_dir, "wal"),
            segment_bytes=options.segment_bytes,
            group_commit_records=options.group_commit_records,
            use_fsync=options.use_fsync,
            stats=stats,
            sync_listener=sync_listener,
        )
        return cls(data_dir, manifest, wal, options)

    # ------------------------------------------------------------- write path
    def log_put(self, key: bytes, value: bytes) -> int:
        return self.wal.append(REC_PUT, key, value)

    def log_delete(self, key: bytes) -> int:
        return self.wal.append(REC_DELETE, key)

    def sync(self) -> int:
        """Force the WAL group-commit batch out (acks everything appended)."""
        return self.wal.sync()

    @property
    def closed(self) -> bool:
        """True once close()/crash() released the WAL (no more appends)."""
        return self.wal.closed

    @property
    def durable_lsn(self) -> int:
        return self.wal.durable_lsn

    @property
    def last_appended_lsn(self) -> int:
        return self.wal.last_appended_lsn

    # ---------------------------------------------------- structural mirroring
    def persist_run(self, run) -> int:
        """Write a run's entries to a new SSTable file; returns file number.

        Tags the run with its ``file_number`` so later ``edit_remove`` calls
        can name it.  The file is fsynced before this returns (ordering rule
        1), but is not live until :meth:`commit` lands its manifest edit.
        """
        number = self._next_file
        self._next_file += 1
        write_sstable(
            sstable_path(self.sst_dir, number),
            list(run.items()),
            use_fsync=self.options.use_fsync,
        )
        run.file_number = number
        return number

    def edit_add(self, level: int, guard_lo: Optional[bytes], run) -> None:
        if run.file_number is None:
            self.persist_run(run)
        self.manifest.log_add(level, guard_lo, run.file_number, run.size_bytes)

    def edit_remove(self, level: int, guard_lo: Optional[bytes], run) -> None:
        if run.file_number is None:
            return  # run never became live on disk (created and merged pre-commit)
        self.manifest.log_remove(level, guard_lo, run.file_number)
        self._pending_deletes.append(run.file_number)
        run.file_number = None

    def note_guards(self, level: int, los: List[bytes]) -> None:
        self.manifest.log_guards(level, los)

    def commit(self, flush_lsn: int) -> None:
        """Land the queued manifest edits, then retire the WAL prefix and the
        superseded SSTable files (ordering rules 2 and 3)."""
        if flush_lsn > 0:
            self.manifest.log_checkpoint(flush_lsn)
        self.manifest.commit()
        if flush_lsn > 0:
            self.wal.truncate_upto(flush_lsn)
        for number in self._pending_deletes:
            path = sstable_path(self.sst_dir, number)
            if os.path.exists(path):
                os.unlink(path)
        self._pending_deletes = []

    # -------------------------------------------------------------- lifecycle
    def crash(self) -> None:
        """Simulate a process crash: unsynced WAL batch and uncommitted
        manifest edits vanish; files already on disk stay."""
        self.wal.crash()
        self.manifest.crash()
        self._pending_deletes = []
        self._closed = True

    def close(self) -> None:
        """Clean shutdown: everything appended becomes durable."""
        if self._closed:
            return
        self.wal.close()
        self.manifest.close()
        self._closed = True
