"""Typed error hierarchy for the durability subsystem.

Every failure mode a data directory can surface — a torn or bit-flipped WAL
segment, a checksum-failing SSTable, a malformed MANIFEST — maps to one
exception class under :class:`RecoveryError`, so callers (the CLI ``recover``
command, the fault injector, the fuzz suite) can distinguish "this store is
corrupt" from a plain bug.  The recovery code must never leak a raw
``struct.error`` / ``KeyError`` / ``json.JSONDecodeError`` out of a corrupted
input: the CI recovery-fuzz job asserts exactly that.
"""

from __future__ import annotations

__all__ = [
    "DurabilityError",
    "RecoveryError",
    "WalCorruptionError",
    "SSTableCorruptionError",
    "ManifestError",
    "CheckpointError",
]


class DurabilityError(Exception):
    """Base class for all durability-layer failures."""


class RecoveryError(DurabilityError):
    """A data directory could not be recovered into a consistent store."""


class WalCorruptionError(RecoveryError):
    """A *sealed* WAL segment failed validation (bad magic, CRC, or gap).

    Checksum failures in the tail of the *final* segment are not corruption:
    they are the expected signature of a crash mid-append and recovery
    silently stops at the last valid record (the acked-prefix invariant).
    A sealed (non-final) segment, by contrast, was fully written and synced,
    so any damage there is real corruption and must surface typed.
    """


class SSTableCorruptionError(RecoveryError):
    """An on-disk SSTable failed its magic/version/CRC validation."""


class ManifestError(RecoveryError):
    """The MANIFEST edit log is malformed beyond the tolerated torn tail."""


class CheckpointError(DurabilityError):
    """A simulation checkpoint could not be captured, parsed, or restored."""
