"""repro.durability: WAL, on-disk SSTables, MANIFEST, recovery, checkpoints.

This package makes :class:`repro.kvstore.LSMStore` crash-consistent: every
mutation is write-ahead logged with group commit, flushes and compactions
persist their runs and record them in a MANIFEST edit log, and
:func:`open_store` rebuilds exactly the acknowledged write prefix after a
crash at any byte offset.  ``docs/durability.md`` documents the formats and
the acked-prefix invariant.
"""

from repro.durability.backend import DurabilityOptions, DurableBackend
from repro.durability.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpointer,
    SimCheckpoint,
)
from repro.durability.errors import (
    CheckpointError,
    DurabilityError,
    ManifestError,
    RecoveryError,
    SSTableCorruptionError,
    WalCorruptionError,
)
from repro.durability.manifest import Manifest, VersionState
from repro.durability.recovery import RecoveryReport, inspect_data_dir, open_store
from repro.durability.sstable_io import read_sstable, sstable_path, write_sstable
from repro.durability.wal import (
    REC_DELETE,
    REC_PUT,
    WalRecord,
    WalReplay,
    WalWriter,
    encode_record,
    replay_wal,
    scan_segments,
)

__all__ = [
    "DurabilityOptions",
    "DurableBackend",
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpointer",
    "SimCheckpoint",
    "DurabilityError",
    "RecoveryError",
    "WalCorruptionError",
    "SSTableCorruptionError",
    "ManifestError",
    "CheckpointError",
    "Manifest",
    "VersionState",
    "RecoveryReport",
    "open_store",
    "inspect_data_dir",
    "read_sstable",
    "write_sstable",
    "sstable_path",
    "REC_PUT",
    "REC_DELETE",
    "WalRecord",
    "WalReplay",
    "WalWriter",
    "encode_record",
    "replay_wal",
    "scan_segments",
]
