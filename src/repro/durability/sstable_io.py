"""On-disk SSTable codec: persist and reload immutable sorted runs.

Format (single file per run, ``<data_dir>/sst/<number:08d>.sst``)::

    header : [magic "OSST"][version: u32][entry count: u64]
    entries: count * ([klen: u32][key][vlen: u32][value])
    footer : [crc32: u32]  — over header + entries

The whole file is read and CRC-verified before any entry is trusted, so a
bit flip anywhere surfaces as a typed
:class:`~repro.durability.errors.SSTableCorruptionError` instead of a
half-loaded run.  Writes go through a temp file + ``os.replace`` so a crash
mid-write can never leave a plausible-looking partial table under the final
name (the MANIFEST additionally never references a table before its file is
durable).
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import List, Sequence, Tuple

from repro.durability.errors import SSTableCorruptionError
from repro.kvstore.sstable import SSTable

__all__ = ["write_sstable", "read_sstable", "sstable_path"]

SST_MAGIC = b"OSST"
SST_FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sIQ")
_U32 = struct.Struct("<I")


def sstable_path(sst_dir: str, number: int) -> str:
    return os.path.join(sst_dir, f"{number:08d}.sst")


def write_sstable(
    path: str, entries: Sequence[Tuple[bytes, bytes]], use_fsync: bool = True
) -> int:
    """Serialise ``entries`` (sorted, as held by an SSTable) to ``path``.

    Returns the file size in bytes.
    """
    parts: List[bytes] = [_HEADER.pack(SST_MAGIC, SST_FORMAT_VERSION, len(entries))]
    for k, v in entries:
        parts.append(_U32.pack(len(k)))
        parts.append(k)
        parts.append(_U32.pack(len(v)))
        parts.append(v)
    blob = b"".join(parts)
    blob += _U32.pack(zlib.crc32(blob))
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(blob)
        f.flush()
        if use_fsync:
            os.fsync(f.fileno())
    os.replace(tmp, path)
    return len(blob)


def read_sstable(path: str) -> SSTable:
    """Load and CRC-verify one on-disk run; raises SSTableCorruptionError."""
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except OSError as exc:
        raise SSTableCorruptionError(f"{path}: unreadable ({exc})") from None
    if len(blob) < _HEADER.size + _U32.size:
        raise SSTableCorruptionError(f"{path}: file too short to be an SSTable")
    body, footer = blob[: -_U32.size], blob[-_U32.size :]
    if zlib.crc32(body) != _U32.unpack(footer)[0]:
        raise SSTableCorruptionError(f"{path}: CRC mismatch")
    magic, version, count = _HEADER.unpack_from(body, 0)
    if magic != SST_MAGIC:
        raise SSTableCorruptionError(f"{path}: bad magic {magic!r}")
    if version != SST_FORMAT_VERSION:
        raise SSTableCorruptionError(f"{path}: unsupported SSTable version {version}")
    entries: List[Tuple[bytes, bytes]] = []
    off = _HEADER.size
    n = len(body)
    try:
        for _ in range(count):
            (klen,) = _U32.unpack_from(body, off)
            off += _U32.size
            key = body[off : off + klen]
            off += klen
            (vlen,) = _U32.unpack_from(body, off)
            off += _U32.size
            value = body[off : off + vlen]
            off += vlen
            if len(key) != klen or len(value) != vlen:
                raise SSTableCorruptionError(f"{path}: entry overruns the file")
            entries.append((key, value))
    except struct.error:
        raise SSTableCorruptionError(f"{path}: truncated entry table") from None
    if off != n:
        raise SSTableCorruptionError(f"{path}: {n - off} trailing bytes after entries")
    try:
        return SSTable(entries)
    except ValueError as exc:
        raise SSTableCorruptionError(f"{path}: invalid run ({exc})") from None
