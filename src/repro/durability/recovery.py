"""Crash-consistent recovery: rebuild an LSMStore from its data directory.

Recovery sequence (``open_store``):

1. replay the MANIFEST into a :class:`VersionState` (compacting it on the
   way), install the recorded guards, and reload every live SSTable file
   with full CRC validation — newest-first run order is reconstructed from
   the manifest's add order;
2. replay the WAL tail (records with ``lsn > wal_checkpoint_lsn``) straight
   into the memtable, bypassing the store's write path so recovery itself
   does not re-log or trigger flushes mid-rebuild;
3. truncate any torn tail off the final WAL segment (those bytes were never
   acknowledged) and attach a fresh :class:`WalWriter` continuing the LSN
   sequence in a new segment.

The result holds exactly the acknowledged prefix of the pre-crash write
sequence.  Orphan ``.sst`` files — written but never committed to the
MANIFEST — are ignored.  Every validation failure surfaces as a typed
:class:`~repro.durability.errors.RecoveryError` subclass.

The :class:`RecoveryReport` records how much work the rebuild did (WAL bytes
scanned, tables loaded); the simulation turns it into a modeled restart
warm-up via :meth:`repro.sim.durcost.DurabilityCostModel.recovery_cost_ms`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.durability.backend import DurabilityOptions, DurableBackend
from repro.durability.errors import ManifestError
from repro.durability.manifest import Manifest
from repro.durability.sstable_io import read_sstable, sstable_path
from repro.durability.wal import (
    REC_DELETE,
    REC_PUT,
    WalWriter,
    replay_wal,
    scan_segments,
)

__all__ = ["RecoveryReport", "open_store", "inspect_data_dir"]


@dataclass
class RecoveryReport:
    """What one recovery pass actually did (drives the warm-up cost model)."""

    wal_records_replayed: int = 0
    wal_bytes_scanned: int = 0
    wal_segments_scanned: int = 0
    tables_loaded: int = 0
    sst_bytes_loaded: int = 0
    manifest_edits: int = 0
    torn_tail: bool = False

    def as_dict(self) -> Dict[str, float]:
        return {
            "wal_records_replayed": float(self.wal_records_replayed),
            "wal_bytes_scanned": float(self.wal_bytes_scanned),
            "wal_segments_scanned": float(self.wal_segments_scanned),
            "tables_loaded": float(self.tables_loaded),
            "sst_bytes_loaded": float(self.sst_bytes_loaded),
            "manifest_edits": float(self.manifest_edits),
            "torn_tail": float(self.torn_tail),
        }


def _load_tables(store, manifest: Manifest, report: RecoveryReport) -> None:
    """Install guards and reload live runs per the manifest's version state."""
    from repro.kvstore.lsm import _Guard

    state = manifest.state
    for level, los in sorted(state.guards.items()):
        if not 1 <= level < store.max_levels:
            raise ManifestError(
                f"guards recorded at level {level}, outside this store's "
                f"1..{store.max_levels - 1}"
            )
        store.levels[level] = [_Guard(lo) for lo in sorted(los)]
    guard_by_lo = {
        (level, g.lo): g for level in range(1, store.max_levels) for g in store.levels[level]
    }
    for (level, guard_lo), files in sorted(
        state.tables.items(), key=lambda kv: (kv[0][0], kv[0][1] or b"")
    ):
        if level == 0:
            target = store.level0
        else:
            guard = guard_by_lo.get((level, guard_lo))
            if guard is None:
                raise ManifestError(
                    f"table add references unknown guard {guard_lo!r} at level {level}"
                )
            target = guard.runs
        for number in files:  # newest first, preserved
            path = sstable_path(os.path.join(store.backend_dir, "sst"), number)
            run = read_sstable(path)
            run.file_number = number
            target.append(run)
            report.tables_loaded += 1
            report.sst_bytes_loaded += os.path.getsize(path)


def open_store(
    data_dir: str,
    options: Optional[DurabilityOptions] = None,
    stats=None,
    sync_listener: Optional[Callable[[int], None]] = None,
    **lsm_kwargs,
):
    """Open (creating or recovering) a durable LSMStore rooted at ``data_dir``.

    A directory with no prior MANIFEST/WAL is initialised fresh; anything
    else goes through full recovery and bumps ``stats.recoveries``.  Extra
    keyword arguments configure the :class:`LSMStore` (``memtable_limit``
    etc.) and must match what the directory was written with.
    """
    from repro.kvstore.lsm import LSMStore

    options = options or DurabilityOptions()
    os.makedirs(data_dir, exist_ok=True)
    wal_dir = os.path.join(data_dir, "wal")
    existed = Manifest.exists(data_dir) or bool(scan_segments(wal_dir))

    store = LSMStore(**lsm_kwargs)
    if stats is not None:
        store.stats = stats
    store.backend_dir = data_dir
    report = RecoveryReport()

    manifest = Manifest.open(data_dir, use_fsync=options.use_fsync)
    report.manifest_edits = manifest.state.edits_applied
    _load_tables(store, manifest, report)

    replay = replay_wal(wal_dir, start_lsn=manifest.state.wal_checkpoint_lsn)
    report.wal_records_replayed = len(replay.records)
    report.wal_bytes_scanned = replay.bytes_scanned
    report.wal_segments_scanned = replay.segments_scanned
    report.torn_tail = replay.torn_tail
    for rec in replay.records:
        # straight into the memtable: no re-logging, no mid-recovery flush
        if rec.rec_type == REC_PUT:
            store.mem.put(rec.key, rec.value)
        else:
            store.mem.delete(rec.key)
    if replay.torn_tail and replay.final_path is not None:
        # drop the never-acked bytes so they cannot later sit inside a
        # sealed segment and read as corruption
        with open(replay.final_path, "r+b") as f:
            f.truncate(replay.final_valid_bytes)
        if replay.final_valid_bytes == 0:
            os.unlink(replay.final_path)

    next_lsn = max(replay.last_lsn, manifest.state.wal_checkpoint_lsn) + 1
    wal = WalWriter(
        wal_dir,
        segment_bytes=options.segment_bytes,
        group_commit_records=options.group_commit_records,
        use_fsync=options.use_fsync,
        start_lsn=next_lsn,
        start_seq=replay.last_seq + 1,
        stats=store.stats,
        sync_listener=sync_listener,
    )
    store.backend = DurableBackend(data_dir, manifest, wal, options)
    store.last_recovery = report
    if existed:
        store.stats.recoveries += 1
    if len(store.mem) >= store.memtable_limit:
        store._flush()
    return store


def inspect_data_dir(data_dir: str) -> Dict[str, object]:
    """Read-only summary of a data directory (the CLI ``recover`` command).

    Raises typed :class:`RecoveryError` subclasses on damage; never mutates.
    """
    wal_dir = os.path.join(data_dir, "wal")
    if not Manifest.exists(data_dir) and not scan_segments(wal_dir):
        raise ManifestError(f"{data_dir}: no MANIFEST or WAL segments found")
    # replay without the compacting rewrite Manifest.open performs
    from repro.durability.manifest import _replay_lines

    manifest_path = os.path.join(data_dir, "MANIFEST")
    vstate = _replay_lines(manifest_path) if os.path.exists(manifest_path) else None
    replay = replay_wal(wal_dir, start_lsn=vstate.wal_checkpoint_lsn if vstate else 0)
    live = vstate.live_files() if vstate else []
    sst_bytes = 0
    for number in live:
        path = sstable_path(os.path.join(data_dir, "sst"), number)
        if os.path.exists(path):
            sst_bytes += os.path.getsize(path)
    return {
        "data_dir": data_dir,
        "manifest_edits": vstate.edits_applied if vstate else 0,
        "wal_checkpoint_lsn": vstate.wal_checkpoint_lsn if vstate else 0,
        "live_tables": len(live),
        "sst_bytes": sst_bytes,
        "guard_levels": sorted(vstate.guards) if vstate else [],
        "wal_segments": replay.segments_scanned,
        "wal_bytes": replay.bytes_scanned,
        "wal_records_pending": len(replay.records),
        "wal_last_lsn": replay.last_lsn,
        "torn_tail": replay.torn_tail,
    }
