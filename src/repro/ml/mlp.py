"""NumPy multi-layer perceptron regressor (the paper's MLP baseline).

Matches the paper's configuration: 4 hidden layers (§4.3), ReLU, trained
with Adam on mean squared error, mini-batched, with input standardisation
fitted on the training data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MLPRegressor"]


class MLPRegressor:
    """Fully-connected regressor: in → 4 hidden ReLU layers → 1 output."""

    def __init__(
        self,
        hidden: Sequence[int] = (64, 64, 32, 16),
        learning_rate: float = 1e-3,
        epochs: int = 120,
        batch_size: int = 256,
        l2: float = 1e-5,
        seed: int = 0,
    ):
        if len(hidden) == 0:
            raise ValueError("need at least one hidden layer")
        self.hidden = tuple(int(h) for h in hidden)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self.train_losses_: List[float] = []

    # ---------------------------------------------------------------- setup
    def _init_params(self, n_in: int, rng: np.random.Generator) -> None:
        sizes = [n_in, *self.hidden, 1]
        self.weights_ = []
        self.biases_ = []
        for a, b in zip(sizes[:-1], sizes[1:]):
            # He initialisation for ReLU stacks
            self.weights_.append(rng.normal(0.0, np.sqrt(2.0 / a), size=(a, b)))
            self.biases_.append(np.zeros(b))

    def _forward(self, X: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        acts = [X]
        h = X
        last = len(self.weights_) - 1
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = h @ W + b
            h = z if i == last else np.maximum(z, 0.0)
            acts.append(h)
        return h, acts

    # ------------------------------------------------------------------ fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1, 1)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("X must be (n, f) with matching non-empty y")
        rng = np.random.default_rng(self.seed)
        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        Xn = (X - self._x_mean) / self._x_std
        yn = (y - self._y_mean) / self._y_std

        self._init_params(X.shape[1], rng)
        mW = [np.zeros_like(W) for W in self.weights_]
        vW = [np.zeros_like(W) for W in self.weights_]
        mb = [np.zeros_like(b) for b in self.biases_]
        vb = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0
        n = Xn.shape[0]
        self.train_losses_ = []

        for _epoch in range(self.epochs):
            perm = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = perm[start : start + self.batch_size]
                xb, yb = Xn[idx], yn[idx]
                pred, acts = self._forward(xb)
                err = pred - yb
                epoch_loss += float((err**2).sum())
                # backprop
                grad = 2.0 * err / xb.shape[0]
                t += 1
                gW: List[np.ndarray] = [None] * len(self.weights_)  # type: ignore
                gb: List[np.ndarray] = [None] * len(self.biases_)  # type: ignore
                for i in range(len(self.weights_) - 1, -1, -1):
                    gW[i] = acts[i].T @ grad + self.l2 * self.weights_[i]
                    gb[i] = grad.sum(axis=0)
                    if i > 0:
                        grad = (grad @ self.weights_[i].T) * (acts[i] > 0)
                for i in range(len(self.weights_)):
                    for store, g, m, v in (
                        (self.weights_, gW, mW, vW),
                        (self.biases_, gb, mb, vb),
                    ):
                        m[i] = beta1 * m[i] + (1 - beta1) * g[i]
                        v[i] = beta2 * v[i] + (1 - beta2) * g[i] ** 2
                        mhat = m[i] / (1 - beta1**t)
                        vhat = v[i] / (1 - beta2**t)
                        store[i] = store[i] - self.learning_rate * mhat / (np.sqrt(vhat) + eps)
            self.train_losses_.append(epoch_loss / n)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._x_mean is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        Xn = (X - self._x_mean) / self._x_std
        out, _ = self._forward(Xn)
        return out.ravel() * self._y_std + self._y_mean
