"""Feature-importance ranking for Table 1.

Takes the GBDT's accumulated split gains and produces the ranked table the
paper reports (rank 1 = most important; equal-gain features share a rank the
way Table 1 shows duplicated ranks).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ml.dataset import FEATURE_NAMES

__all__ = ["rank_features"]


def rank_features(
    importances: Sequence[float],
    names: Sequence[str] = FEATURE_NAMES,
    tie_tolerance: float = 0.02,
) -> List[Tuple[str, float, int]]:
    """Return ``(name, importance, rank)`` sorted by descending importance.

    Features whose importances differ by less than ``tie_tolerance`` (after
    normalisation) share a rank, mirroring Table 1's tied entries.
    """
    imp = np.asarray(importances, dtype=np.float64)
    if imp.shape[0] != len(names):
        raise ValueError("importances/names length mismatch")
    if imp.sum() > 0:
        imp = imp / imp.sum()
    order = np.argsort(-imp)
    out: List[Tuple[str, float, int]] = []
    rank = 0
    prev = None
    for pos, j in enumerate(order):
        if prev is None or prev - imp[j] > tie_tolerance:
            rank = pos + 1
            prev = float(imp[j])
        out.append((names[int(j)], float(imp[j]), rank))
    return out
