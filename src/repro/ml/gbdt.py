"""Gradient-boosted regression trees (LightGBM-style and classic).

Squared-error boosting: ``F_0 = mean(y)``; each round fits a histogram tree
to the residuals and adds it with shrinkage ``learning_rate``.  The paper's
production model is LightGBM with **400 boosting rounds and 32 leaves**
(§4.3) — that is this class's default configuration with ``growth="leaf"``.

Feature importance is accumulated split gain, the "Gini importance" LightGBM
reports and Table 1 ranks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.tree import Binner, RegressionTree, apply_binned

__all__ = ["GBDTRegressor"]


class GBDTRegressor:
    """Boosted histogram trees for regression."""

    def __init__(
        self,
        n_estimators: int = 400,
        learning_rate: float = 0.1,
        max_leaves: int = 32,
        max_depth: int = 6,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        n_bins: int = 64,
        growth: str = "leaf",
        early_stopping_rounds: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ValueError("need at least one boosting round")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_leaves = max_leaves
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.n_bins = n_bins
        self.growth = growth
        self.early_stopping_rounds = early_stopping_rounds
        self.trees_: List[RegressionTree] = []
        self.base_: float = 0.0
        self.binner_: Optional[Binner] = None
        self.train_losses_: List[float] = []
        self.valid_losses_: List[float] = []
        #: packed forest for batched inference: per-tree flat node arrays
        #: with the shrinkage pre-folded into the leaf values (lazily built,
        #: dropped on refit)
        self._forest_: Optional[List[Tuple[np.ndarray, ...]]] = None

    @property
    def n_features_(self) -> int:
        if self.binner_ is None or self.binner_.edges_ is None:
            raise RuntimeError("model not fitted")
        return len(self.binner_.edges_)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "GBDTRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("X must be (n, f) with matching non-empty y")
        self.binner_ = Binner(self.n_bins)
        self._forest_ = None
        binned = self.binner_.fit_transform(X)
        self.base_ = float(y.mean())
        pred = np.full(y.shape[0], self.base_)
        self.trees_ = []
        self.train_losses_ = []
        self.valid_losses_ = []

        vb = vy = vpred = None
        if eval_set is not None:
            vX, vy = eval_set
            vb = self.binner_.transform(np.asarray(vX, dtype=np.float64))
            vy = np.asarray(vy, dtype=np.float64)
            vpred = np.full(vy.shape[0], self.base_)
        best_valid = np.inf
        best_round = 0

        for r in range(self.n_estimators):
            residual = y - pred
            tree = RegressionTree(
                max_leaves=self.max_leaves,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
                growth=self.growth,
            )
            tree.fit(binned, residual)
            self.trees_.append(tree)
            pred += self.learning_rate * tree.predict_binned(binned)
            self.train_losses_.append(float(np.mean((y - pred) ** 2)))
            if vb is not None:
                vpred += self.learning_rate * tree.predict_binned(vb)
                vloss = float(np.mean((vy - vpred) ** 2))
                self.valid_losses_.append(vloss)
                if vloss < best_valid - 1e-15:
                    best_valid = vloss
                    best_round = r
                elif (
                    self.early_stopping_rounds is not None
                    and r - best_round >= self.early_stopping_rounds
                ):
                    self.trees_ = self.trees_[: best_round + 1]
                    break
        return self

    def _packed_forest(self) -> List[Tuple[np.ndarray, ...]]:
        forest = self._forest_
        if forest is None or len(forest) != len(self.trees_):
            lr = self.learning_rate
            # pre-scaling each leaf once is bit-identical to scaling every
            # per-sample gather (same operands, one multiply per leaf instead
            # of one per row per tree)
            forest = self._forest_ = [
                t.packed()[:4] + (lr * t.packed()[4],) for t in self.trees_
            ]
        return forest

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.binner_ is None:
            raise RuntimeError("model not fitted")
        binned = self.binner_.transform(np.asarray(X, dtype=np.float64))
        out = np.full(binned.shape[0], self.base_)
        # per-tree, in boosting order: float accumulation order is part of
        # the model's observable output and must not change
        for feature, threshold, left, right, scaled in self._packed_forest():
            out += scaled[apply_binned(binned, feature, threshold, left, right)]
        return out

    def feature_importances(self, normalize: bool = True) -> np.ndarray:
        """Total split gain per feature (Table 1's Gini importance)."""
        if not self.trees_:
            raise RuntimeError("model not fitted")
        total = np.zeros(self.n_features_)
        for tree in self.trees_:
            if tree.feature_gain_ is not None:
                total += tree.feature_gain_
        if normalize and total.sum() > 0:
            total = total / total.sum()
        return total
