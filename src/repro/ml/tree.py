"""Histogram-based regression trees (the GBDT's weak learner).

Features are pre-binned to ``uint8`` bin indices; every split decision works
on per-bin gradient histograms (one flattened ``bincount`` per node covering
all features at once), with the classic parent − sibling histogram
subtraction to halve the work.  Two growth strategies:

* ``"leaf"`` — best-first leaf-wise growth to ``max_leaves`` (LightGBM);
* ``"level"`` — breadth-first growth to ``max_depth`` (classic GBDT).

Squared-error objective: per-sample gradient = residual, hessian = 1, so a
node's optimal value is ``sum(residual) / (count + reg_lambda)`` and split
gain is the usual variance-reduction score.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["Binner", "RegressionTree", "apply_binned"]


def apply_binned(
    binned: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
) -> np.ndarray:
    """Leaf index per row for one packed tree (vectorised level walk).

    Rows that settle on a leaf drop out of the active set instead of being
    re-tested every level, so each iteration only touches rows still in
    flight — the walk over a full forest is what every per-epoch inference
    call pays, and candidate sets routinely reach tens of thousands of rows.
    """
    n = binned.shape[0]
    node = np.zeros(n, dtype=np.int64)
    if n == 0 or feature.shape[0] == 0 or feature[0] < 0:
        return node  # root is a leaf (or nothing to do)
    rows = np.arange(n)
    while rows.size:
        cur = node[rows]
        f = feature[cur]
        nxt = np.where(binned[rows, f] <= threshold[cur], left[cur], right[cur])
        node[rows] = nxt
        rows = rows[feature[nxt] >= 0]
    return node


class Binner:
    """Quantile binning of a float feature matrix into uint8 bin indices."""

    def __init__(self, n_bins: int = 64):
        if not 2 <= n_bins <= 256:
            raise ValueError("n_bins must be in [2, 256]")
        self.n_bins = n_bins
        self.edges_: Optional[List[np.ndarray]] = None

    def fit(self, X: np.ndarray) -> "Binner":
        X = np.asarray(X, dtype=np.float64)
        self.edges_ = []
        qs = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        for f in range(X.shape[1]):
            edges = np.unique(np.quantile(X[:, f], qs))
            self.edges_.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape, dtype=np.uint8)
        for f, edges in enumerate(self.edges_):
            out[:, f] = np.searchsorted(edges, X[:, f], side="right")
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


@dataclass
class _Split:
    gain: float
    feature: int
    bin_threshold: int  # go left if bin <= threshold
    left_idx: np.ndarray
    right_idx: np.ndarray
    left_hist: Tuple[np.ndarray, np.ndarray]
    right_hist: Tuple[np.ndarray, np.ndarray]


class RegressionTree:
    """One histogram regression tree over pre-binned features."""

    def __init__(
        self,
        max_leaves: int = 32,
        max_depth: int = 12,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-12,
        growth: str = "leaf",
    ):
        if growth not in ("leaf", "level"):
            raise ValueError("growth must be 'leaf' or 'level'")
        self.max_leaves = max_leaves
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        self.growth = growth
        # flat tree arrays (filled by fit)
        self.feature: List[int] = []
        self.threshold: List[int] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.value: List[float] = []
        self.n_leaves = 0
        self.feature_gain_: Optional[np.ndarray] = None
        #: packed (feature, threshold, left, right, value) ndarray views of
        #: the node lists, built lazily — rebuilding them per predict call
        #: dominated forest inference
        self._packed: Optional[Tuple[np.ndarray, ...]] = None

    # ------------------------------------------------------------- internals
    def _new_node(self) -> int:
        self.feature.append(-1)
        self.threshold.append(-1)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1

    def _histograms(
        self, binned: np.ndarray, grad: np.ndarray, idx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(grad_hist, count_hist), each (n_features, n_bins), in one bincount."""
        n_features = binned.shape[1]
        flat = (binned[idx] + self._offsets).ravel()
        g = np.repeat(grad[idx], n_features)
        size = n_features * self._n_bins
        ghist = np.bincount(flat, weights=g, minlength=size).reshape(n_features, self._n_bins)
        chist = np.bincount(flat, minlength=size).reshape(n_features, self._n_bins)
        return ghist, chist

    def _best_split(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        idx: np.ndarray,
        hist: Tuple[np.ndarray, np.ndarray],
    ) -> Optional[_Split]:
        ghist, chist = hist
        lam = self.reg_lambda
        g_tot = ghist.sum(axis=1, keepdims=True)
        c_tot = chist.sum(axis=1, keepdims=True)
        gl = np.cumsum(ghist, axis=1)[:, :-1]
        cl = np.cumsum(chist, axis=1)[:, :-1]
        gr = g_tot - gl
        cr = c_tot - cl
        ok = (cl >= self.min_samples_leaf) & (cr >= self.min_samples_leaf)
        parent_score = (g_tot**2) / (c_tot + lam)
        gain = gl**2 / (cl + lam) + gr**2 / (cr + lam) - parent_score
        gain[~ok] = -np.inf
        f, b = np.unravel_index(np.argmax(gain), gain.shape)
        best_gain = float(gain[f, b])
        if not np.isfinite(best_gain) or best_gain <= self.min_gain:
            return None
        mask = binned[idx, f] <= b
        left_idx = idx[mask]
        right_idx = idx[~mask]
        # histogram subtraction: compute the smaller child, derive the other
        if left_idx.shape[0] <= right_idx.shape[0]:
            lh = self._histograms(binned, grad, left_idx)
            rh = (ghist - lh[0], chist - lh[1])
        else:
            rh = self._histograms(binned, grad, right_idx)
            lh = (ghist - rh[0], chist - rh[1])
        return _Split(best_gain, int(f), int(b), left_idx, right_idx, lh, rh)

    def _leaf_value(self, grad: np.ndarray, idx: np.ndarray) -> float:
        return float(grad[idx].sum() / (idx.shape[0] + self.reg_lambda))

    # ------------------------------------------------------------------ fit
    def fit(self, binned: np.ndarray, grad: np.ndarray) -> "RegressionTree":
        binned = np.asarray(binned, dtype=np.uint8)
        grad = np.asarray(grad, dtype=np.float64)
        self._packed = None  # node lists are about to change
        n, n_features = binned.shape
        self._n_bins = int(binned.max()) + 1 if n else 1
        self._offsets = (np.arange(n_features) * self._n_bins).astype(np.int64)
        self.feature_gain_ = np.zeros(n_features)

        root = self._new_node()
        all_idx = np.arange(n)
        self.value[root] = self._leaf_value(grad, all_idx)
        self.n_leaves = 1
        if n < 2 * self.min_samples_leaf:
            return self

        root_hist = self._histograms(binned, grad, all_idx)
        if self.growth == "leaf":
            self._grow_leafwise(binned, grad, root, all_idx, root_hist)
        else:
            self._grow_levelwise(binned, grad, root, all_idx, root_hist)
        return self

    def _grow_leafwise(self, binned, grad, root, all_idx, root_hist) -> None:
        heap: List[Tuple[float, int, int, _Split]] = []
        counter = 0

        def consider(node: int, idx: np.ndarray, hist) -> None:
            nonlocal counter
            split = self._best_split(binned, grad, idx, hist)
            if split is not None:
                heapq.heappush(heap, (-split.gain, counter, node, split))
                counter += 1

        consider(root, all_idx, root_hist)
        while heap and self.n_leaves < self.max_leaves:
            _, _, node, split = heapq.heappop(heap)
            lnode = self._new_node()
            rnode = self._new_node()
            self.feature[node] = split.feature
            self.threshold[node] = split.bin_threshold
            self.left[node] = lnode
            self.right[node] = rnode
            self.value[lnode] = self._leaf_value(grad, split.left_idx)
            self.value[rnode] = self._leaf_value(grad, split.right_idx)
            self.feature_gain_[split.feature] += split.gain
            self.n_leaves += 1  # one leaf became two
            consider(lnode, split.left_idx, split.left_hist)
            consider(rnode, split.right_idx, split.right_hist)

    def _grow_levelwise(self, binned, grad, root, all_idx, root_hist) -> None:
        frontier = [(root, all_idx, root_hist)]
        for _depth in range(self.max_depth):
            nxt = []
            for node, idx, hist in frontier:
                split = self._best_split(binned, grad, idx, hist)
                if split is None:
                    continue
                lnode = self._new_node()
                rnode = self._new_node()
                self.feature[node] = split.feature
                self.threshold[node] = split.bin_threshold
                self.left[node] = lnode
                self.right[node] = rnode
                self.value[lnode] = self._leaf_value(grad, split.left_idx)
                self.value[rnode] = self._leaf_value(grad, split.right_idx)
                self.feature_gain_[split.feature] += split.gain
                self.n_leaves += 1
                nxt.append((lnode, split.left_idx, split.left_hist))
                nxt.append((rnode, split.right_idx, split.right_hist))
            frontier = nxt
            if not frontier:
                break

    # -------------------------------------------------------------- predict
    def packed(self) -> Tuple[np.ndarray, ...]:
        """Node lists as flat ndarrays ``(feature, threshold, left, right,
        value)``, cached until the next :meth:`fit`."""
        p = self._packed
        if p is None:
            p = self._packed = (
                np.asarray(self.feature, dtype=np.int64),
                np.asarray(self.threshold, dtype=np.int64),
                np.asarray(self.left, dtype=np.int64),
                np.asarray(self.right, dtype=np.int64),
                np.asarray(self.value, dtype=np.float64),
            )
        return p

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        """Predict from pre-binned features (vectorised level walk)."""
        binned = np.asarray(binned, dtype=np.uint8)
        feature, threshold, left, right, value = self.packed()
        return value[apply_binned(binned, feature, threshold, left, right)]
