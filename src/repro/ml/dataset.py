"""Table-1 features: extraction and normalisation.

Per candidate subtree the Data Collector yields two statistic families
(§4.3): namespace structure (depth, # sub-files, # sub-dirs — *subtree*
totals, since migration happens at subtree granularity) and last-epoch
access history (# metadata reads, # writes — again subtree totals), plus the
two derived ratios.  Normalisation follows Table 1 exactly:

====================  =========================================
feature               normalisation
====================  =========================================
depth                 by the max value (this dump)
# sub-files           by the max value
# sub-dirs            by the max value
# read                by # total accesses in last epoch
# write               by # total accesses in last epoch
read-write ratio      raw
dir-file ratio        raw
====================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.namespace.stats import EpochSnapshot
from repro.namespace.tree import NamespaceTree

__all__ = ["FEATURE_NAMES", "FeatureExtractor", "TrainingSet"]

FEATURE_NAMES: Tuple[str, ...] = (
    "depth",
    "n_sub_files",
    "n_sub_dirs",
    "n_read",
    "n_write",
    "read_write_ratio",
    "dir_file_ratio",
)


class FeatureExtractor:
    """Builds the 7-column Table-1 feature matrix for candidate subtrees."""

    def __init__(self, tree: NamespaceTree):
        self.tree = tree

    def extract(
        self, candidates: np.ndarray, snapshot: EpochSnapshot
    ) -> np.ndarray:
        """Feature matrix (n_candidates × 7) for one epoch snapshot."""
        tree = self.tree
        cap = tree.capacity
        idx = tree.dfs_index()
        candidates = np.asarray(candidates, dtype=np.int64)

        def pad(a: np.ndarray) -> np.ndarray:
            if a.shape[0] >= cap:
                return a[:cap].astype(np.float64)
            out = np.zeros(cap, dtype=np.float64)
            out[: a.shape[0]] = a
            return out

        # subtree structure rollups
        files_sub = idx.subtree_sum(pad(tree.child_file_counts()))
        dirs_per = np.ones(cap, dtype=np.float64)
        dirs_per[~tree.dir_mask()] = 0.0
        dirs_sub = idx.subtree_sum(dirs_per) - dirs_per  # exclude the root itself
        depths = tree.depth_array().astype(np.float64)

        # subtree access rollups (reads include lsdir per the paper's grouping)
        reads_sub = idx.subtree_sum(pad(snapshot.reads))
        writes_sub = idx.subtree_sum(pad(snapshot.writes))
        total_access = float(snapshot.reads.sum() + snapshot.writes.sum())

        depth_c = depths[candidates]
        files_c = files_sub[candidates]
        dirs_c = dirs_sub[candidates]
        reads_c = reads_sub[candidates]
        writes_c = writes_sub[candidates]

        max_depth = depth_c.max() if depth_c.size else 1.0
        max_files = files_c.max() if files_c.size else 1.0
        max_dirs = dirs_c.max() if dirs_c.size else 1.0

        def safe_div(a: np.ndarray, b: float) -> np.ndarray:
            return a / b if b > 0 else np.zeros_like(a)

        rw_ratio = reads_c / np.maximum(writes_c + reads_c, 1.0)
        df_ratio = dirs_c / np.maximum(files_c + dirs_c, 1.0)

        X = np.column_stack(
            [
                safe_div(depth_c, max_depth),
                safe_div(files_c, max_files),
                safe_div(dirs_c, max_dirs),
                safe_div(reads_c, total_access),
                safe_div(writes_c, total_access),
                rw_ratio,
                df_ratio,
            ]
        )
        return X


@dataclass
class TrainingSet:
    """Accumulated (features, benefit label) pairs across epochs."""

    X_parts: List[np.ndarray] = field(default_factory=list)
    y_parts: List[np.ndarray] = field(default_factory=list)

    def add(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(FEATURE_NAMES):
            raise ValueError(f"X must be (n, {len(FEATURE_NAMES)})")
        if y.shape[0] != X.shape[0]:
            raise ValueError("label length mismatch")
        self.X_parts.append(X)
        self.y_parts.append(y)

    @property
    def n_samples(self) -> int:
        return sum(x.shape[0] for x in self.X_parts)

    def matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self.X_parts:
            return (
                np.empty((0, len(FEATURE_NAMES))),
                np.empty(0),
            )
        return np.vstack(self.X_parts), np.concatenate(self.y_parts)

    def train_test_split(
        self, test_fraction: float = 0.2, seed: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        X, y = self.matrices()
        n = X.shape[0]
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        n_test = int(n * test_fraction)
        test, train = perm[:n_test], perm[n_test:]
        return X[train], y[train], X[test], y[test]
