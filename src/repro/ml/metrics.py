"""Regression metrics for model comparison and validation.

Spearman rank correlation matters more than RMSE here: §4.3 observes that
all three models produce near-identical *migration decisions* despite
accuracy differences, because Meta-OPT only needs the high-benefit subtrees
ranked first — a rank metric captures that property directly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "mean_absolute_error", "r2_score", "spearman_rank_correlation", "top_k_overlap"]


def _check(y_true: np.ndarray, y_pred: np.ndarray):
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1 or y_true.size == 0:
        raise ValueError("y_true and y_pred must be equal-length non-empty vectors")
    return y_true, y_pred


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def _rank(x: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their positions)."""
    order = np.argsort(x, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, x.size + 1)
    # average tied groups
    sorted_x = x[order]
    i = 0
    while i < x.size:
        j = i
        while j + 1 < x.size and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    return ranks


def spearman_rank_correlation(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    rt, rp = _rank(y_true), _rank(y_pred)
    st, sp = rt.std(), rp.std()
    if st == 0 or sp == 0:
        return 0.0
    return float(np.mean((rt - rt.mean()) * (rp - rp.mean())) / (st * sp))


def top_k_overlap(y_true: np.ndarray, y_pred: np.ndarray, k: int) -> float:
    """Fraction of the true top-k items the prediction also ranks top-k.

    This is the decision-level agreement §4.3 reports: models that rank the
    same high-benefit subtrees first produce the same migrations.
    """
    y_true, y_pred = _check(y_true, y_pred)
    if not 1 <= k <= y_true.size:
        raise ValueError("k out of range")
    t = set(np.argsort(y_true)[-k:].tolist())
    p = set(np.argsort(y_pred)[-k:].tolist())
    return len(t & p) / k
