"""Closed-form ridge regression (sanity baseline for the model comparison)."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["RidgeRegressor"]


class RidgeRegressor:
    """``argmin ||Xw - y||^2 + alpha ||w||^2`` with intercept, solved exactly."""

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValueError("X must be (n, f) with matching non-empty y")
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        f = X.shape[1]
        A = Xc.T @ Xc + self.alpha * np.eye(f)
        self.coef_ = np.linalg.solve(A, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model not fitted")
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_
