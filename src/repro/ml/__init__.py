"""From-scratch ML stack (no lightgbm/sklearn/torch available offline).

Implements the three model families the paper compares (§4.3):

* :class:`~repro.ml.gbdt.GBDTRegressor` — histogram-based gradient-boosted
  regression trees.  ``growth="leaf"`` gives LightGBM-style best-first
  leaf-wise growth (the paper's production pick: 400 rounds, 32 leaves);
  ``growth="level"`` gives classic depth-wise GBDT.
* :class:`~repro.ml.mlp.MLPRegressor` — a NumPy multi-layer perceptron with
  4 hidden layers and Adam, matching the paper's MLP baseline.
* :class:`~repro.ml.linear.RidgeRegressor` — closed-form ridge baseline for
  sanity comparisons.

Plus the Table-1 feature pipeline (:mod:`~repro.ml.dataset`), split-gain
("Gini") importances (:mod:`~repro.ml.importance` via the GBDT), and
regression metrics (:mod:`~repro.ml.metrics`).
"""

from repro.ml.dataset import FEATURE_NAMES, FeatureExtractor, TrainingSet
from repro.ml.gbdt import GBDTRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import mean_absolute_error, r2_score, rmse, spearman_rank_correlation
from repro.ml.mlp import MLPRegressor

__all__ = [
    "FeatureExtractor",
    "TrainingSet",
    "FEATURE_NAMES",
    "GBDTRegressor",
    "MLPRegressor",
    "RidgeRegressor",
    "rmse",
    "mean_absolute_error",
    "r2_score",
    "spearman_rank_correlation",
]
